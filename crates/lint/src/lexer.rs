//! A small hand-rolled Rust lexer: just enough token discipline to make
//! textual invariant rules sound.
//!
//! The lint rules are substring searches, which are only trustworthy if
//! string literals and comments cannot fake or hide a token. This module
//! produces a *masked* view of a source file — byte-for-byte the same
//! length and line structure as the original, with the contents of every
//! string/char literal and every comment replaced by spaces — plus the
//! comment list (line-numbered, text preserved) that the `// SAFETY:`
//! and `// lint:` rules read.
//!
//! Handled syntax:
//!
//! - line comments (`//`, `///`, `//!`) and block comments (`/* */`),
//!   including **nested** block comments;
//! - string literals with escapes (`"a\"b"`), byte strings (`b"…"`),
//!   raw strings with any hash depth (`r"…"`, `r#"…"#`, `br##"…"##`);
//! - char literals with escapes (`'\''`, `'\u{1F600}'`) versus
//!   **lifetimes** (`'a`, `'static`, `for<'de>`), which must not be
//!   mistaken for an unterminated char literal.
//!
//! This is deliberately not a full lexer — no token stream, no keywords
//! — because the rules only need "is this byte code, string, or
//! comment?" plus comment text.

/// One comment from the source, with its starting line (1-based).
///
/// Block comments keep their full text including newlines; the `line`
/// is where the comment *starts*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line on which the comment opens.
    pub line: usize,
    /// Comment text including the `//` / `/*` delimiters.
    pub text: String,
}

/// A masked source file: same bytes as the input except that string and
/// char literal *contents* and entire comments are replaced by spaces
/// (newlines kept, so line/column arithmetic still holds).
#[derive(Debug, Clone)]
pub struct Masked {
    /// The space-masked source. Identical length to the input.
    pub code: String,
    /// Every comment, in source order.
    pub comments: Vec<Comment>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    /// Block comment with nesting depth.
    BlockComment(u32),
    Str,
    /// Raw string terminated by `"` followed by `hashes` `#`s.
    RawStr {
        hashes: u32,
    },
    Char,
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Masks `src`, returning the code view and the comment list.
///
/// The masking never fails: unterminated constructs simply mask to the
/// end of input, which is the conservative choice for a linter (tokens
/// inside them stay hidden).
pub fn mask(src: &str) -> Masked {
    let chars: Vec<char> = src.chars().collect();
    let mut out: Vec<char> = Vec::with_capacity(chars.len());
    let mut comments = Vec::new();
    let mut comment_buf = String::new();
    let mut comment_line = 0usize;
    let mut line = 1usize;
    let mut state = State::Code;
    let mut i = 0usize;

    macro_rules! push_masked {
        ($c:expr) => {
            out.push(if $c == '\n' { '\n' } else { ' ' })
        };
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
        }
        match state {
            State::Code => {
                // Comment openers.
                if c == '/' && i + 1 < chars.len() && chars[i + 1] == '/' {
                    state = State::LineComment;
                    comment_line = line;
                    comment_buf.clear();
                    comment_buf.push(c);
                    push_masked!(c);
                    i += 1;
                    continue;
                }
                if c == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
                    state = State::BlockComment(1);
                    comment_line = line;
                    comment_buf.clear();
                    comment_buf.push_str("/*");
                    push_masked!(c);
                    push_masked!(chars[i + 1]);
                    i += 2;
                    continue;
                }
                // Raw / byte string openers: r"…", r#"…"#, b"…", br#"…"#.
                // Only when not part of a longer identifier (`ber"x"` is
                // not a string).
                let prev_ident = i > 0 && is_ident(chars[i - 1]);
                if !prev_ident && (c == 'r' || c == 'b') {
                    let mut j = i + 1;
                    let mut raw = c == 'r';
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        raw = true;
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    // `b"…"` is escape-rule; `r…`/`br…` are raw. A hash
                    // run without the `r` prefix is not a string opener.
                    if chars.get(j) == Some(&'"') && (raw || hashes == 0) {
                        // Keep the prefix and the opening quote visible.
                        for &k in &chars[i..=j] {
                            out.push(k);
                        }
                        i = j + 1;
                        state = if raw {
                            State::RawStr { hashes }
                        } else {
                            State::Str
                        };
                        continue;
                    }
                    out.push(c);
                    i += 1;
                    continue;
                }
                if c == '"' {
                    out.push(c);
                    state = State::Str;
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    // Lifetime or char literal? A lifetime is `'` +
                    // ident-start NOT followed by a closing `'`
                    // (`'a'` is a char, `'a` is a lifetime).
                    let next = chars.get(i + 1).copied();
                    let after = chars.get(i + 2).copied();
                    let is_lifetime = matches!(next, Some(n) if n == '_' || n.is_alphabetic())
                        && after != Some('\'');
                    if is_lifetime {
                        out.push(c);
                        i += 1;
                        continue;
                    }
                    out.push(c);
                    state = State::Char;
                    i += 1;
                    continue;
                }
                out.push(c);
                i += 1;
            }
            State::LineComment => {
                if c == '\n' {
                    comments.push(Comment {
                        line: comment_line,
                        text: comment_buf.clone(),
                    });
                    state = State::Code;
                    out.push('\n');
                    i += 1;
                    continue;
                }
                comment_buf.push(c);
                push_masked!(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    comment_buf.push_str("/*");
                    push_masked!(c);
                    push_masked!('*');
                    i += 2;
                    continue;
                }
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    comment_buf.push_str("*/");
                    push_masked!(c);
                    push_masked!('/');
                    i += 2;
                    if depth == 1 {
                        comments.push(Comment {
                            line: comment_line,
                            text: comment_buf.clone(),
                        });
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                    continue;
                }
                comment_buf.push(c);
                push_masked!(c);
                i += 1;
            }
            State::Str => {
                if c == '\\' && i + 1 < chars.len() {
                    push_masked!(c);
                    push_masked!(chars[i + 1]);
                    if chars[i + 1] == '\n' {
                        line += 1;
                    }
                    i += 2;
                    continue;
                }
                if c == '"' {
                    out.push(c);
                    state = State::Code;
                    i += 1;
                    continue;
                }
                push_masked!(c);
                i += 1;
            }
            State::RawStr { hashes } => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && chars.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        out.push('"');
                        out.extend(std::iter::repeat_n('#', hashes as usize));
                        i = j;
                        state = State::Code;
                        continue;
                    }
                }
                push_masked!(c);
                i += 1;
            }
            State::Char => {
                if c == '\\' && i + 1 < chars.len() {
                    push_masked!(c);
                    push_masked!(chars[i + 1]);
                    i += 2;
                    continue;
                }
                if c == '\'' {
                    out.push(c);
                    state = State::Code;
                    i += 1;
                    continue;
                }
                push_masked!(c);
                i += 1;
            }
        }
    }
    // Unterminated line comment at EOF still counts.
    if state == State::LineComment {
        comments.push(Comment {
            line: comment_line,
            text: comment_buf,
        });
    }
    Masked {
        code: out.into_iter().collect(),
        comments,
    }
}

/// Blanks (space-fills, newlines kept) every `#[cfg(test)]` item in the
/// masked code — test modules and test-gated items are outside the
/// production invariants the lint enforces.
///
/// Finds each `#[cfg(test)]` attribute, then blanks from the attribute
/// through the end of the item: either the matching `}` of the first
/// brace block that follows, or the first `;` before any brace opens.
pub fn strip_cfg_test(code: &str) -> String {
    let bytes: Vec<char> = code.chars().collect();
    let mut blanked = vec![false; bytes.len()];
    let needle: Vec<char> = "#[cfg(test)]".chars().collect();
    let mut i = 0;
    while i + needle.len() <= bytes.len() {
        if bytes[i..i + needle.len()] != needle[..] {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i + needle.len();
        let mut depth = 0i64;
        let mut end = bytes.len();
        while j < bytes.len() {
            match bytes[j] {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = j + 1;
                        break;
                    }
                }
                ';' if depth == 0 => {
                    end = j + 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        for (k, flag) in blanked.iter_mut().enumerate().take(end).skip(start) {
            if bytes[k] != '\n' {
                *flag = true;
            }
        }
        i = end;
    }
    bytes
        .iter()
        .zip(&blanked)
        .map(|(&c, &b)| if b { ' ' } else { c })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn masked_code(src: &str) -> String {
        mask(src).code
    }

    #[test]
    fn masks_line_comments_but_records_them() {
        let m = mask("let x = 1; // HashMap here\nlet y = 2;\n");
        assert!(!m.code.contains("HashMap"));
        assert_eq!(m.comments.len(), 1);
        assert_eq!(m.comments[0].line, 1);
        assert!(m.comments[0].text.contains("HashMap"));
    }

    #[test]
    fn masks_nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        let code = masked_code(src);
        assert!(code.starts_with('a'));
        assert!(code.ends_with('b'));
        assert!(!code.contains("inner"));
        assert!(!code.contains("still"));
        let m = mask(src);
        assert_eq!(m.comments.len(), 1);
        assert!(m.comments[0].text.contains("inner"));
    }

    #[test]
    fn masks_string_contents_and_escaped_quotes() {
        let code = masked_code(r#"let s = "thread_rng \" unwrap()"; next"#);
        assert!(!code.contains("thread_rng"));
        assert!(!code.contains("unwrap"));
        assert!(code.contains("next"));
    }

    #[test]
    fn masks_raw_strings_with_hashes() {
        let code = masked_code(r###"let s = r#"Instant::now() "quoted" "#; tail"###);
        assert!(!code.contains("Instant::now"));
        assert!(!code.contains("quoted"));
        assert!(code.contains("tail"));
    }

    #[test]
    fn masks_byte_and_raw_byte_strings() {
        let code = masked_code(r##"let a = b"panic!"; let b = br#"unwrap"#; ok"##);
        assert!(!code.contains("panic"));
        assert!(!code.contains("unwrap"));
        assert!(code.contains("ok"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // If `'a` were read as an unterminated char literal, everything
        // after it would be masked away.
        let code = masked_code("fn f<'a>(x: &'a str) -> &'a str { x } HashMap");
        assert!(code.contains("HashMap"));
        assert!(code.contains("&'a str"));
    }

    #[test]
    fn char_literals_mask_their_contents() {
        let code = masked_code("let q = '\"'; let esc = '\\''; let l = 'x'; done");
        assert!(!code.contains('x'), "char contents must be masked: {code}");
        assert!(code.contains("done"));
        // The masked quote must not open a string that swallows `done`.
        assert!(!code.contains('"'));
    }

    #[test]
    fn preserves_length_and_line_structure() {
        let src = "a\n/* b\nc */\n\"d\ne\"\nf";
        let m = mask(src);
        assert_eq!(m.code.chars().count(), src.chars().count());
        assert_eq!(
            m.code.matches('\n').count(),
            src.matches('\n').count(),
            "newlines must survive masking"
        );
    }

    #[test]
    fn strip_cfg_test_blanks_test_modules() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let stripped = strip_cfg_test(src);
        assert!(!stripped.contains("unwrap"));
        assert!(stripped.contains("fn prod"));
        assert!(stripped.contains("fn after"));
    }

    #[test]
    fn strip_cfg_test_handles_item_without_braces() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn keep() {}\n";
        let stripped = strip_cfg_test(src);
        assert!(!stripped.contains("foo::bar"));
        assert!(stripped.contains("fn keep"));
    }
}
