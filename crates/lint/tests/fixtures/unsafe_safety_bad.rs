pub fn read_first(xs: &[f64]) -> f64 {
    unsafe { *xs.get_unchecked(0) }
}
