pub fn total(xs: &[f64]) -> f64 {
    // lint: reduction-order slice order, matching the scalar reference path
    xs.iter().sum::<f64>()
}
