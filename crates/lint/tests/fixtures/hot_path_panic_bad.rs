pub fn pick(xs: &[f64]) -> f64 {
    let first = xs.first().unwrap();
    if !first.is_finite() {
        panic!("non-finite weight");
    }
    *first
}
