pub fn frame_seed(counter: u64) -> u64 {
    // "Instant::now" in a string or comment must not trip the rule.
    let _label = "Instant::now";
    counter.wrapping_mul(0x9E3779B97F4A7C15)
}
