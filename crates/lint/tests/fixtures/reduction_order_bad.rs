pub fn total(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>()
}
