pub fn read_first(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    // SAFETY: the assert above guarantees index 0 is in bounds.
    unsafe { *xs.get_unchecked(0) }
}
