pub fn serve(stream: &mut NoiseStream, out: &mut [f64]) {
    for o in out.iter_mut() {
        *o = stream.next_z();
    }
}
