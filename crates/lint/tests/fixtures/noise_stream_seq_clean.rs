pub fn serve(stream: &NoiseStream, base: u64, out: &mut [f64]) {
    for (k, o) in out.iter_mut().enumerate() {
        *o = stream.at(base + k as u64);
    }
}
