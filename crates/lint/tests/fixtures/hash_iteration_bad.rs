use std::collections::HashMap;

pub fn tally(xs: &[usize]) -> HashMap<usize, usize> {
    let mut m = HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}
