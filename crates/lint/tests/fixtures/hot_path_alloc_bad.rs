impl Engine {
    pub fn log_likelihood_into_chunked(&mut self, batch: &PointBatch, out: &mut [f64]) {
        let staged: Vec<f64> = batch.iter().map(|p| p[0]).collect();
        out.copy_from_slice(&staged);
    }
}
