impl Engine {
    pub fn log_likelihood_into_chunked(&mut self, batch: &PointBatch, out: &mut [f64]) {
        self.scratch.clear();
        self.scratch.extend_from_slice(batch.as_flat());
        out.copy_from_slice(&self.scratch);
    }

    fn helper_outside_hot_path(&self) -> Vec<f64> {
        // Allocation outside a registered hot-path fn is fine.
        Vec::new()
    }
}
