pub fn frame_seed() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
