pub fn jitter(stream: &NoiseStream, i: u64) -> f64 {
    stream.at(i)
}
