use std::collections::BTreeMap;

pub fn tally(xs: &[usize]) -> BTreeMap<usize, usize> {
    let mut m = BTreeMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}
