pub fn pick(xs: &[f64]) -> Option<f64> {
    let first = xs.first()?;
    first.is_finite().then_some(*first)
}
