pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
