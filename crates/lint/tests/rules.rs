//! Per-rule fixture tests: each rule must fire on its violating fixture
//! and stay silent on the clean one, with the fixture linted under a
//! path that puts it in the rule's scope.

use navicim_lint::lint_source;

fn rules_at(path: &str, source: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = lint_source(path, source)
        .into_iter()
        .map(|f| f.rule)
        .collect();
    rules.dedup();
    rules
}

#[test]
fn wall_clock_fixture_pair() {
    let bad = include_str!("fixtures/wall_clock_bad.rs");
    let clean = include_str!("fixtures/wall_clock_clean.rs");
    assert!(rules_at("crates/core/src/pipeline.rs", bad).contains(&"wall-clock"));
    assert!(rules_at("crates/core/src/pipeline.rs", clean).is_empty());
    // The same source is fine in measurement code.
    assert!(rules_at("crates/bench/src/bin/bench_kernels.rs", bad).is_empty());
}

#[test]
fn ambient_rng_fixture_pair() {
    let bad = include_str!("fixtures/ambient_rng_bad.rs");
    let clean = include_str!("fixtures/ambient_rng_clean.rs");
    assert!(rules_at("crates/math/src/rng.rs", bad).contains(&"ambient-rng"));
    assert!(rules_at("crates/math/src/rng.rs", clean).is_empty());
}

#[test]
fn hash_iteration_fixture_pair() {
    let bad = include_str!("fixtures/hash_iteration_bad.rs");
    let clean = include_str!("fixtures/hash_iteration_clean.rs");
    assert!(rules_at("crates/gmm/src/fit.rs", bad).contains(&"hash-iteration"));
    assert!(rules_at("crates/gmm/src/fit.rs", clean).is_empty());
    // Bench only reports timings: exempt.
    assert!(rules_at("crates/bench/src/bin/bench_serve.rs", bad).is_empty());
}

#[test]
fn unsafe_safety_fixture_pair() {
    let bad = include_str!("fixtures/unsafe_safety_bad.rs");
    let clean = include_str!("fixtures/unsafe_safety_clean.rs");
    assert!(rules_at("crates/math/src/simd.rs", bad).contains(&"unsafe-safety"));
    assert!(rules_at("crates/math/src/simd.rs", clean).is_empty());
}

#[test]
fn hot_path_panic_fixture_pair() {
    let bad = include_str!("fixtures/hot_path_panic_bad.rs");
    let clean = include_str!("fixtures/hot_path_panic_clean.rs");
    assert!(rules_at("crates/core/src/pipeline.rs", bad).contains(&"hot-path-panic"));
    assert!(rules_at("crates/core/src/pipeline.rs", clean).is_empty());
    // Outside the hot-path module list the rule does not apply.
    assert!(rules_at("crates/scene/src/camera.rs", bad).is_empty());
}

#[test]
fn hot_path_expect_allowlist_is_per_file() {
    let src = "pub fn f(x: Option<u32>) -> u32 { x.expect(\"invariant\") }\n";
    // fleet.rs carries a written reason for documented expects…
    assert!(rules_at("crates/serve/src/fleet.rs", src).is_empty());
    // …pipeline.rs does not, so the same code is a finding there.
    assert!(rules_at("crates/core/src/pipeline.rs", src).contains(&"hot-path-panic"));
}

#[test]
fn reduction_order_fixture_pair() {
    let bad = include_str!("fixtures/reduction_order_bad.rs");
    let clean = include_str!("fixtures/reduction_order_clean.rs");
    assert!(rules_at("crates/math/src/simd.rs", bad).contains(&"reduction-order"));
    assert!(rules_at("crates/math/src/simd.rs", clean).is_empty());
    // Non-kernel files are out of scope.
    assert!(rules_at("crates/scene/src/camera.rs", bad).is_empty());
}

#[test]
fn hot_path_alloc_fixture_pair() {
    let bad = include_str!("fixtures/hot_path_alloc_bad.rs");
    let clean = include_str!("fixtures/hot_path_alloc_clean.rs");
    assert!(rules_at("crates/analog/src/engine.rs", bad).contains(&"hot-path-alloc"));
    assert!(rules_at("crates/analog/src/engine.rs", clean).is_empty());
}

#[test]
fn noise_stream_seq_fixture_pair() {
    let bad = include_str!("fixtures/noise_stream_seq_bad.rs");
    let clean = include_str!("fixtures/noise_stream_seq_clean.rs");
    assert!(rules_at("crates/serve/src/coalesce.rs", bad).contains(&"noise-stream-seq"));
    assert!(rules_at("crates/serve/src/coalesce.rs", clean).is_empty());
}

#[test]
fn suppression_requires_reason() {
    let with_reason =
        "// lint: allow(hash-iteration) order never observed: keys drained through sort below\n\
                       use std::collections::HashMap;\n";
    assert!(rules_at("crates/gmm/src/fit.rs", with_reason).is_empty());

    let without_reason = "// lint: allow(hash-iteration)\n\
                          use std::collections::HashMap;\n";
    let rules = rules_at("crates/gmm/src/fit.rs", without_reason);
    assert!(
        rules.contains(&"lint-directive"),
        "reasonless allow must itself be a finding: {rules:?}"
    );
}

#[test]
fn suppression_only_covers_adjacent_line() {
    let far = "// lint: allow(hash-iteration) some reason\n\nlet x = 1;\n\
               use std::collections::HashMap;\n";
    assert!(rules_at("crates/gmm/src/fit.rs", far).contains(&"hash-iteration"));
}

#[test]
fn cfg_test_code_is_exempt() {
    let src = "pub fn prod() {}\n\
               #[cfg(test)]\n\
               mod tests {\n\
                   use std::collections::HashMap;\n\
                   fn t() { let _ = std::time::Instant::now(); }\n\
               }\n";
    assert!(rules_at("crates/gmm/src/fit.rs", src).is_empty());
}

#[test]
fn tokens_in_strings_and_comments_do_not_fire() {
    let src = "pub fn doc() -> &'static str {\n\
               // HashMap and Instant::now discussed here only.\n\
               \"HashMap thread_rng Instant::now unsafe\"\n\
               }\n";
    assert!(rules_at("crates/gmm/src/fit.rs", src).is_empty());
}
