//! SRAM compute-in-memory macro for MC-Dropout (paper Section III).
//!
//! Models the three hardware pieces the paper's Bayesian-inference macro
//! adds on top of a conventional 8T-SRAM CIM array:
//!
//! - [`cell`] — per-port leakage (with threshold-voltage mismatch) and
//!   per-cycle noise statistics of the write ports, the physical entropy
//!   source,
//! - [`rng`] — the cross-coupled-inverter random number generator fed by
//!   column leakage/noise currents, with its trim-DAC bias calibration
//!   (Fig. 3(b)); implements [`navicim_math::rng::Rng64`] so dropout
//!   masks can be drawn straight from the modeled silicon,
//! - [`cim_macro`] — the weight-stationary macro executing quantized
//!   matrix-vector products with partial-sum ADC quantization, row gating
//!   and the `P_i = P_{i-1} + W·I_A − W·I_D` compute-reuse scheme,
//! - [`reuse`] — dropout-mask ordering (greedy min-Hamming tour) that
//!   minimizes switched inputs between consecutive MC iterations, the
//!   paper's "optimal sample ordering".

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cell;
pub mod cim_macro;
pub mod reuse;
pub mod rng;

use std::error::Error;
use std::fmt;

/// Error type for SRAM-macro construction and programming.
#[derive(Debug, Clone, PartialEq)]
pub enum SramError {
    /// An argument was outside its valid domain.
    InvalidArgument(String),
    /// A layer id was used before being programmed.
    UnknownLayer(usize),
    /// Programmed and queried shapes disagree.
    ShapeMismatch {
        /// Expected size.
        expected: usize,
        /// Found size.
        found: usize,
    },
}

impl fmt::Display for SramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SramError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            SramError::UnknownLayer(id) => write!(f, "layer {id} has not been programmed"),
            SramError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl Error for SramError {}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, SramError>;
