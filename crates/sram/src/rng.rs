//! The SRAM-embedded cross-coupled-inverter RNG (paper Fig. 3(b)).
//!
//! Equal numbers of SRAM columns discharge the two ends of a cross-coupled
//! inverter pair; at the clock edge the CCI regenerates the sign of the
//! differential into a full-swing dropout bit. The decision variable is
//!
//! `Δ = (ΣI_leak,L − ΣI_leak,R) + V_os·C/t + noise`
//!
//! where the static leakage imbalance and comparator offset `V_os` bias
//! the generator, and the cycle noise provides the entropy. A trim DAC
//! nulls the static part after a serial-bit calibration, exactly as the
//! paper describes.

use crate::cell::{PortStats, SramColumn};
use crate::{Result, SramError};
use navicim_math::rng::{Pcg32, Rng64};

/// Configuration of one CCI RNG instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CciRngConfig {
    /// SRAM columns connected to each side of the CCI.
    pub columns_per_side: usize,
    /// Cells per column.
    pub cells_per_column: usize,
    /// Port statistics (technology dependent).
    pub port: PortStats,
    /// Comparator (CCI) input-referred offset σ, expressed as an
    /// equivalent current in amperes.
    pub comparator_offset_sigma: f64,
    /// Trim-DAC resolution in bits.
    pub trim_bits: u32,
    /// Trim-DAC full-scale range as an equivalent current in amperes.
    pub trim_range: f64,
}

impl Default for CciRngConfig {
    fn default() -> Self {
        Self {
            columns_per_side: 4,
            cells_per_column: 64,
            port: PortStats::node_16nm(),
            comparator_offset_sigma: 20e-12,
            trim_bits: 10,
            trim_range: 1.5e-9,
        }
    }
}

/// Report of a calibration run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationReport {
    /// Ones-fraction before calibration.
    pub bias_before: f64,
    /// Ones-fraction after calibration.
    pub bias_after: f64,
    /// Final trim-DAC code.
    pub trim_code: i64,
    /// Bits spent on calibration.
    pub bits_used: u64,
}

/// The modeled CCI RNG.
///
/// Implements [`Rng64`], so it can drive dropout-mask sampling directly.
#[derive(Debug, Clone)]
pub struct CciRng {
    leak_imbalance: f64,
    comparator_offset: f64,
    noise_rms: f64,
    trim_step: f64,
    trim_code: i64,
    trim_max: i64,
    noise_rng: Pcg32,
    bits_generated: u64,
}

impl CciRng {
    /// "Fabricates" one RNG instance: draws the per-column leakage and the
    /// comparator offset once from the process model.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::InvalidArgument`] for zero-sized arrays or a
    /// zero trim range.
    pub fn fabricate<R: Rng64 + ?Sized>(config: &CciRngConfig, rng: &mut R) -> Result<Self> {
        if config.columns_per_side == 0 || config.cells_per_column == 0 {
            return Err(SramError::InvalidArgument(
                "rng requires at least one column and one cell".into(),
            ));
        }
        if !(config.trim_range > 0.0) || config.trim_bits == 0 || config.trim_bits > 16 {
            return Err(SramError::InvalidArgument(
                "trim dac requires positive range and 1..=16 bits".into(),
            ));
        }
        let side = |rng: &mut R| -> (f64, f64) {
            let mut leak = 0.0;
            let mut noise_var = 0.0;
            for _ in 0..config.columns_per_side {
                let col = SramColumn::fabricate(config.cells_per_column, &config.port, rng);
                leak += col.total_leakage();
                noise_var += col.noise_rms() * col.noise_rms();
            }
            (leak, noise_var)
        };
        let (leak_l, nv_l) = side(rng);
        let (leak_r, nv_r) = side(rng);
        use navicim_math::rng::SampleExt;
        let v_os = rng.sample_normal(0.0, config.comparator_offset_sigma);
        let trim_max = (1i64 << (config.trim_bits - 1)) - 1;
        Ok(Self {
            leak_imbalance: leak_l - leak_r,
            comparator_offset: v_os,
            noise_rms: (nv_l + nv_r).sqrt(),
            trim_step: config.trim_range / (1u64 << config.trim_bits) as f64,
            trim_code: 0,
            trim_max,
            noise_rng: Pcg32::new(rng.next_u64(), 0x5ead),
            bits_generated: 0,
        })
    }

    /// The residual static offset after trimming, as a z-score against the
    /// cycle noise (0 = perfectly unbiased).
    pub fn offset_z(&self) -> f64 {
        (self.leak_imbalance + self.comparator_offset - self.trim_code as f64 * self.trim_step)
            / self.noise_rms
    }

    /// The comparator offset alone as a z-score against the cycle noise.
    ///
    /// This is the quantity the paper's column parallelism attacks: the
    /// offset is a fixed property of the CCI, while the aggregated cycle
    /// noise grows with `√(columns · cells)`, so the ratio shrinks as the
    /// array scales.
    pub fn comparator_offset_z(&self) -> f64 {
        self.comparator_offset / self.noise_rms
    }

    /// Total bits generated so far (calibration included).
    pub fn bits_generated(&self) -> u64 {
        self.bits_generated
    }

    /// Current trim code.
    pub fn trim_code(&self) -> i64 {
        self.trim_code
    }

    /// Generates one raw dropout bit.
    pub fn next_bit(&mut self) -> bool {
        use navicim_math::rng::SampleExt;
        self.bits_generated += 1;
        let noise = self.noise_rng.sample_normal(0.0, self.noise_rms);
        (self.leak_imbalance + self.comparator_offset - self.trim_code as f64 * self.trim_step)
            + noise
            > 0.0
    }

    /// Generates `n` raw bits.
    pub fn bits(&mut self, n: usize) -> Vec<bool> {
        (0..n).map(|_| self.next_bit()).collect()
    }

    /// Estimates the ones-fraction from `n` serial bits (the paper's
    /// calibration measurement).
    pub fn estimate_bias(&mut self, n: usize) -> f64 {
        let ones = (0..n).filter(|_| self.next_bit()).count();
        ones as f64 / n.max(1) as f64
    }

    /// Calibrates the trim DAC: a binary (SAR-style) search on the trim
    /// code, measuring `samples_per_step` bits per comparison.
    pub fn calibrate(&mut self, samples_per_step: usize) -> CalibrationReport {
        let bits_before = self.bits_generated;
        self.trim_code = 0;
        let bias_before = self.estimate_bias(samples_per_step);
        let (mut lo, mut hi) = (-self.trim_max, self.trim_max);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            self.trim_code = mid;
            let bias = self.estimate_bias(samples_per_step);
            if bias > 0.5 {
                // Too many ones: offset still positive, trim harder.
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        self.trim_code = lo;
        let bias_after = self.estimate_bias(samples_per_step * 4);
        CalibrationReport {
            bias_before,
            bias_after,
            trim_code: self.trim_code,
            bits_used: self.bits_generated - bits_before,
        }
    }

    /// Von Neumann whitening: consumes raw bit pairs, emitting one
    /// unbiased bit per discordant pair.
    pub fn next_bit_whitened(&mut self) -> bool {
        loop {
            let a = self.next_bit();
            let b = self.next_bit();
            if a != b {
                return a;
            }
        }
    }
}

impl Rng64 for CciRng {
    fn next_u64(&mut self) -> u64 {
        let mut word = 0u64;
        for i in 0..64 {
            word |= (self.next_bit() as u64) << i;
        }
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_math::randtest;
    use navicim_math::rng::Pcg32;

    fn fab(seed: u64, config: &CciRngConfig) -> CciRng {
        let mut rng = Pcg32::seed_from_u64(seed);
        CciRng::fabricate(config, &mut rng).unwrap()
    }

    #[test]
    fn validation() {
        let mut rng = Pcg32::seed_from_u64(1);
        let bad = CciRngConfig {
            columns_per_side: 0,
            ..CciRngConfig::default()
        };
        assert!(CciRng::fabricate(&bad, &mut rng).is_err());
        let bad_trim = CciRngConfig {
            trim_bits: 0,
            ..CciRngConfig::default()
        };
        assert!(CciRng::fabricate(&bad_trim, &mut rng).is_err());
    }

    #[test]
    fn calibration_removes_bias() {
        // Across several fabricated instances, calibration pulls the
        // ones-fraction close to 0.5.
        let config = CciRngConfig::default();
        for seed in 0..8 {
            let mut rng = fab(seed, &config);
            let report = rng.calibrate(2000);
            assert!(
                (report.bias_after - 0.5).abs() < 0.04,
                "seed {seed}: bias {} -> {}",
                report.bias_before,
                report.bias_after
            );
        }
    }

    #[test]
    fn some_instances_start_biased() {
        // With a realistic comparator offset, at least some dies come out
        // of fabrication visibly biased (motivating calibration).
        let config = CciRngConfig::default();
        let mut worst: f64 = 0.0;
        for seed in 0..12 {
            let mut rng = fab(seed, &config);
            let bias = rng.estimate_bias(4000);
            worst = worst.max((bias - 0.5).abs());
        }
        assert!(worst > 0.05, "worst initial bias {worst}");
    }

    #[test]
    fn calibrated_stream_passes_randomness_battery() {
        let mut rng = fab(3, &CciRngConfig::default());
        rng.calibrate(4000);
        let bits = rng.bits(16_384);
        for outcome in randtest::battery(&bits) {
            assert!(outcome.pass, "{outcome:?}");
        }
    }

    #[test]
    fn whitening_fixes_residual_bias() {
        // Deliberately skip calibration: raw bits may be biased, whitened
        // bits must not be.
        let mut rng = fab(5, &CciRngConfig::default());
        let whitened: Vec<bool> = (0..8192).map(|_| rng.next_bit_whitened()).collect();
        assert!(randtest::monobit(&whitened).pass);
    }

    #[test]
    fn more_columns_reduce_comparator_offset_impact() {
        // The paper's argument: scaling the number of parallel columns
        // amplifies the aggregated cycle noise against the *fixed*
        // comparator offset — its z-score falls as 1/√(total cells).
        let small = CciRngConfig {
            columns_per_side: 1,
            cells_per_column: 16,
            ..CciRngConfig::default()
        };
        let large = CciRngConfig {
            columns_per_side: 16,
            cells_per_column: 256,
            ..CciRngConfig::default()
        };
        let mean_abs_z = |config: &CciRngConfig| -> f64 {
            let mut total = 0.0;
            for seed in 100..140 {
                let rng = fab(seed, config);
                total += rng.comparator_offset_z().abs();
            }
            total / 40.0
        };
        let z_small = mean_abs_z(&small);
        let z_large = mean_abs_z(&large);
        // 16·256 cells vs 1·16 cells: noise ratio = √256 = 16.
        assert!(
            z_large < z_small * 0.1,
            "comparator z: small {z_small}, large {z_large}"
        );
    }

    #[test]
    fn rng64_packing_usable_for_masks() {
        use navicim_math::rng::SampleExt;
        let mut rng = fab(7, &CciRngConfig::default());
        rng.calibrate(2000);
        let kept = (0..20_000).filter(|_| !rng.sample_bool(0.5)).count();
        let frac = kept as f64 / 20_000.0;
        assert!((frac - 0.5).abs() < 0.03, "keep fraction {frac}");
    }

    #[test]
    fn bit_counter_tracks_generation() {
        let mut rng = fab(9, &CciRngConfig::default());
        let before = rng.bits_generated();
        rng.bits(100);
        assert_eq!(rng.bits_generated() - before, 100);
    }
}
