//! Statistical model of 8T-SRAM write-port leakage and noise.
//!
//! During inference the write wordlines are held low, so every write port
//! on a bitline injects only subthreshold leakage plus thermal noise. The
//! per-port leakage varies exponentially with the port transistor's
//! threshold mismatch; the per-cycle noise is white. These are the raw
//! statistics the RNG of [`crate::rng`] harvests.

use navicim_math::rng::{Rng64, SampleExt};

/// Statistics of one write port.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PortStats {
    /// Nominal (zero-mismatch) leakage current in amperes.
    pub i_leak_nominal: f64,
    /// Threshold-voltage mismatch σ in volts.
    pub sigma_vth: f64,
    /// Subthreshold slope factor times thermal voltage, in volts
    /// (`n · U_T` ≈ 36 mV at room temperature).
    pub n_ut: f64,
    /// RMS noise current per evaluation cycle, in amperes.
    pub i_noise_rms: f64,
}

impl PortStats {
    /// Representative 16 nm values: ~5 pA leakage, 28 mV mismatch σ,
    /// thermal-dominated cycle noise.
    pub fn node_16nm() -> Self {
        Self {
            i_leak_nominal: 5e-12,
            sigma_vth: 0.028,
            n_ut: 1.3 * 0.02585,
            i_noise_rms: 2e-12,
        }
    }

    /// Draws one port's static leakage current (log-normal in the
    /// threshold mismatch).
    pub fn sample_leakage<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        let dvth = rng.sample_normal(0.0, self.sigma_vth);
        self.i_leak_nominal * (dvth / self.n_ut).exp()
    }

    /// Mean leakage including the log-normal bias `exp(σ²/2η²)`.
    pub fn mean_leakage(&self) -> f64 {
        let r = self.sigma_vth / self.n_ut;
        self.i_leak_nominal * (0.5 * r * r).exp()
    }

    /// Standard deviation of one port's leakage.
    pub fn leakage_std(&self) -> f64 {
        let r = self.sigma_vth / self.n_ut;
        let m2 = (2.0 * r * r).exp();
        let m1 = (0.5 * r * r).exp();
        self.i_leak_nominal * (m2 - m1 * m1).max(0.0).sqrt()
    }
}

/// A column of `cells` write ports: its static total leakage (drawn at
/// "fabrication") and its aggregated per-cycle noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramColumn {
    total_leakage: f64,
    noise_rms: f64,
    cells: usize,
}

impl SramColumn {
    /// Fabricates a column: draws every port's leakage once.
    ///
    /// # Panics
    ///
    /// Panics if `cells` is zero.
    pub fn fabricate<R: Rng64 + ?Sized>(cells: usize, stats: &PortStats, rng: &mut R) -> Self {
        assert!(cells > 0, "a column needs at least one cell");
        let total_leakage = (0..cells).map(|_| stats.sample_leakage(rng)).sum();
        Self {
            total_leakage,
            noise_rms: stats.i_noise_rms * (cells as f64).sqrt(),
            cells,
        }
    }

    /// Static total leakage of the column in amperes.
    pub fn total_leakage(&self) -> f64 {
        self.total_leakage
    }

    /// Aggregated RMS noise per cycle (√cells scaling: independent ports).
    pub fn noise_rms(&self) -> f64 {
        self.noise_rms
    }

    /// Number of cells.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Draws the column's instantaneous current for one cycle.
    pub fn sample_current<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        self.total_leakage + rng.sample_normal(0.0, self.noise_rms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_math::rng::Pcg32;
    use navicim_math::stats;

    #[test]
    fn leakage_statistics_match_lognormal_theory() {
        let stats_model = PortStats::node_16nm();
        let mut rng = Pcg32::seed_from_u64(1);
        let draws: Vec<f64> = (0..100_000)
            .map(|_| stats_model.sample_leakage(&mut rng))
            .collect();
        let mean = stats::mean(&draws);
        assert!(
            (mean / stats_model.mean_leakage() - 1.0).abs() < 0.02,
            "mean {mean} vs {}",
            stats_model.mean_leakage()
        );
        let sd = stats::std_dev(&draws);
        assert!(
            (sd / stats_model.leakage_std() - 1.0).abs() < 0.05,
            "sd {sd} vs {}",
            stats_model.leakage_std()
        );
    }

    #[test]
    fn column_aggregation_scalings() {
        // Relative leakage spread falls as 1/√M; noise grows as √M — the
        // paper's core observation about parallel ports.
        let stats_model = PortStats::node_16nm();
        let mut rng = Pcg32::seed_from_u64(2);
        let rel_spread = |cells: usize, rng: &mut Pcg32| {
            let totals: Vec<f64> = (0..2000)
                .map(|_| SramColumn::fabricate(cells, &stats_model, rng).total_leakage())
                .collect();
            stats::std_dev(&totals) / stats::mean(&totals)
        };
        let r16 = rel_spread(16, &mut rng);
        let r256 = rel_spread(256, &mut rng);
        assert!(
            (r16 / r256 - 4.0).abs() < 0.8,
            "expected ~4x reduction, got {r16} vs {r256}"
        );
        let c16 = SramColumn::fabricate(16, &stats_model, &mut rng);
        let c256 = SramColumn::fabricate(256, &stats_model, &mut rng);
        assert!((c256.noise_rms() / c16.noise_rms() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn sampled_current_centers_on_leakage() {
        let stats_model = PortStats::node_16nm();
        let mut rng = Pcg32::seed_from_u64(3);
        let col = SramColumn::fabricate(64, &stats_model, &mut rng);
        let xs: Vec<f64> = (0..20_000).map(|_| col.sample_current(&mut rng)).collect();
        assert!((stats::mean(&xs) / col.total_leakage() - 1.0).abs() < 0.01);
        assert!((stats::std_dev(&xs) / col.noise_rms() - 1.0).abs() < 0.05);
    }
}
