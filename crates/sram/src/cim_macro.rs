//! The weight-stationary SRAM CIM macro.
//!
//! Weight codes are programmed once per layer; each `matvec` call streams
//! activation codes through the array. The model captures:
//!
//! - **partial-sum ADC quantization**: every row accumulator is digitized
//!   by an ADC whose range is sized statistically
//!   (`range ≈ factor · √cols · |w|_max · |x|_max`), saturating beyond it,
//! - **row gating**: rows masked by output-dropout are never evaluated
//!   (the paper's RL AND-gating),
//! - **compute reuse**: with reuse enabled, the macro keeps the previous
//!   input codes and exact accumulators per layer, and only applies
//!   delta-MACs where codes changed — the generalization of the paper's
//!   `P_i = P_{i-1} + W·I_A_i − W·I_D_i`,
//! - **operation accounting** for the energy model: executed vs
//!   full-equivalent MACs, ADC conversions, row activations.

use crate::{Result, SramError};
use std::collections::BTreeMap;

/// Macro configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacroConfig {
    /// Partial-sum ADC resolution in bits (0 disables ADC modeling,
    /// yielding exact accumulation).
    pub adc_bits: u32,
    /// ADC range as a multiple of `√cols · |w|_max · |x|_max`.
    pub adc_range_factor: f64,
    /// Enables the compute-reuse scheme.
    pub reuse: bool,
}

impl Default for MacroConfig {
    fn default() -> Self {
        Self {
            adc_bits: 12,
            adc_range_factor: 4.0,
            reuse: true,
        }
    }
}

/// Operation counters for the energy model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MacroStats {
    /// Scalar multiply-accumulates actually executed (after gating and
    /// reuse).
    pub macs_executed: u64,
    /// MACs a dense full recompute would have executed (rows × cols per
    /// call), the paper's baseline workload.
    pub macs_full_equivalent: u64,
    /// Row-accumulator ADC conversions.
    pub adc_conversions: u64,
    /// Rows skipped by output-dropout gating.
    pub rows_gated: u64,
    /// Matrix-vector calls served.
    pub matvec_calls: u64,
}

impl MacroStats {
    /// Fraction of the full-recompute workload actually executed.
    pub fn workload_fraction(&self) -> f64 {
        if self.macs_full_equivalent == 0 {
            return 0.0;
        }
        self.macs_executed as f64 / self.macs_full_equivalent as f64
    }

    /// Counters accumulated since an `earlier` snapshot of the same
    /// macro — the per-frame deltas the gated pipeline prices VO
    /// inference energy from.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `earlier` is ahead of `self`, which
    /// would mean the snapshots were swapped.
    pub fn delta_since(&self, earlier: &MacroStats) -> MacroStats {
        debug_assert!(
            self.macs_executed >= earlier.macs_executed
                && self.matvec_calls >= earlier.matvec_calls,
            "stats snapshots out of order"
        );
        MacroStats {
            macs_executed: self.macs_executed - earlier.macs_executed,
            macs_full_equivalent: self.macs_full_equivalent - earlier.macs_full_equivalent,
            adc_conversions: self.adc_conversions - earlier.adc_conversions,
            rows_gated: self.rows_gated - earlier.rows_gated,
            matvec_calls: self.matvec_calls - earlier.matvec_calls,
        }
    }
}

#[derive(Debug, Clone)]
struct LayerState {
    codes: Vec<i64>,
    rows: usize,
    cols: usize,
    w_max: i64,
    /// Previous input codes (valid only when `has_prev`; the buffer is
    /// kept across frames so steady-state matvecs allocate nothing).
    prev_input: Vec<i64>,
    has_prev: bool,
    prev_acc: Vec<i64>,
}

/// The programmed macro.
#[derive(Debug, Clone)]
pub struct SramCimMacro {
    config: MacroConfig,
    /// Ordered by layer id: iteration order (e.g. [`Self::reset_reuse`])
    /// must not depend on hash state.
    layers: BTreeMap<usize, LayerState>,
    stats: MacroStats,
    /// Reused changed-column index scratch for the delta path.
    changed: Vec<usize>,
}

impl SramCimMacro {
    /// Creates an empty macro.
    pub fn new(config: MacroConfig) -> Self {
        Self {
            config,
            layers: BTreeMap::new(),
            stats: MacroStats::default(),
            changed: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MacroConfig {
        &self.config
    }

    /// Programs (or reprograms) the weight array for `layer_id`.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::ShapeMismatch`] when `codes.len() != rows*cols`
    /// and [`SramError::InvalidArgument`] for empty shapes.
    pub fn program_layer(
        &mut self,
        layer_id: usize,
        codes: &[i64],
        rows: usize,
        cols: usize,
    ) -> Result<()> {
        if rows == 0 || cols == 0 {
            return Err(SramError::InvalidArgument(
                "layer shape must be non-zero".into(),
            ));
        }
        if codes.len() != rows * cols {
            return Err(SramError::ShapeMismatch {
                expected: rows * cols,
                found: codes.len(),
            });
        }
        let w_max = codes.iter().map(|c| c.abs()).max().unwrap_or(0).max(1);
        self.layers.insert(
            layer_id,
            LayerState {
                codes: codes.to_vec(),
                rows,
                cols,
                w_max,
                prev_input: Vec::new(),
                has_prev: false,
                prev_acc: vec![0; rows],
            },
        );
        Ok(())
    }

    /// Returns `true` when a layer is programmed.
    pub fn has_layer(&self, layer_id: usize) -> bool {
        self.layers.contains_key(&layer_id)
    }

    /// Executes one quantized matrix-vector product into a fresh vector.
    ///
    /// Allocating wrapper over [`Self::matvec_into`].
    ///
    /// # Errors
    ///
    /// Returns [`SramError::UnknownLayer`] for unprogrammed ids and
    /// [`SramError::ShapeMismatch`] for wrong input/mask lengths.
    pub fn matvec(
        &mut self,
        layer_id: usize,
        input: &[i64],
        out_mask: &[bool],
    ) -> Result<Vec<i64>> {
        let mut out = Vec::new();
        self.matvec_into(layer_id, input, out_mask, &mut out)?;
        Ok(out)
    }

    /// Executes one quantized matrix-vector product into a reused output
    /// buffer (cleared first; one value per row).
    ///
    /// Masked rows (`out_mask[o] == false`) yield 0 without being
    /// evaluated. The accumulators carry the ADC quantization of the
    /// configured resolution. In steady state — layers programmed, reuse
    /// caches warm, `out` at capacity — the call performs no heap
    /// allocation: the previous-input and changed-column scratch buffers
    /// are retained inside the macro.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::UnknownLayer`] for unprogrammed ids and
    /// [`SramError::ShapeMismatch`] for wrong input/mask lengths.
    pub fn matvec_into(
        &mut self,
        layer_id: usize,
        input: &[i64],
        out_mask: &[bool],
        out: &mut Vec<i64>,
    ) -> Result<()> {
        let reuse = self.config.reuse;
        let layer = self
            .layers
            .get_mut(&layer_id)
            .ok_or(SramError::UnknownLayer(layer_id))?;
        if input.len() != layer.cols {
            return Err(SramError::ShapeMismatch {
                expected: layer.cols,
                found: input.len(),
            });
        }
        if out_mask.len() != layer.rows {
            return Err(SramError::ShapeMismatch {
                expected: layer.rows,
                found: out_mask.len(),
            });
        }
        self.stats.matvec_calls += 1;
        self.stats.macs_full_equivalent += (layer.rows * layer.cols) as u64;
        let active_rows = out_mask.iter().filter(|&&m| m).count() as u64;
        self.stats.rows_gated += layer.rows as u64 - active_rows;

        if reuse && layer.has_prev {
            // Delta path: only columns whose input code changed are
            // re-evaluated; accumulators update incrementally.
            self.changed.clear();
            self.changed
                .extend((0..layer.cols).filter(|&i| layer.prev_input[i] != input[i]));
            for o in 0..layer.rows {
                // Note: accumulators for *all* rows are kept current so
                // later iterations with different row masks stay exact.
                let row = &layer.codes[o * layer.cols..(o + 1) * layer.cols];
                let mut acc = layer.prev_acc[o];
                for &i in &self.changed {
                    acc += row[i] * (input[i] - layer.prev_input[i]);
                }
                layer.prev_acc[o] = acc;
            }
            self.stats.macs_executed += self.changed.len() as u64 * layer.rows as u64;
        } else {
            for o in 0..layer.rows {
                let row = &layer.codes[o * layer.cols..(o + 1) * layer.cols];
                layer.prev_acc[o] = row.iter().zip(input).map(|(&w, &x)| w * x).sum();
            }
            self.stats.macs_executed += (layer.rows * layer.cols) as u64;
        }
        layer.prev_input.clear();
        layer.prev_input.extend_from_slice(input);
        layer.has_prev = true;

        // Read out active rows through the partial-sum ADC.
        let x_max = input.iter().map(|x| x.abs()).max().unwrap_or(0).max(1);
        let range = self.config.adc_range_factor
            * (layer.cols as f64).sqrt()
            * layer.w_max as f64
            * x_max as f64;
        out.clear();
        out.extend((0..layer.rows).map(|o| {
            if !out_mask[o] {
                return 0;
            }
            self.stats.adc_conversions += 1;
            quantize_adc(layer.prev_acc[o], self.config.adc_bits, range)
        }));
        Ok(())
    }

    /// Clears the per-layer reuse caches (new input frame), keeping their
    /// allocations.
    pub fn reset_reuse(&mut self) {
        for layer in self.layers.values_mut() {
            layer.has_prev = false;
            layer.prev_acc.iter_mut().for_each(|a| *a = 0);
        }
    }

    /// Accumulated operation counters.
    pub fn stats(&self) -> MacroStats {
        self.stats
    }

    /// Clears the operation counters.
    pub fn reset_stats(&mut self) {
        self.stats = MacroStats::default();
    }
}

/// Quantizes an exact accumulator through an `adc_bits` ADC spanning
/// `[-range, range]`; `adc_bits == 0` bypasses the ADC.
fn quantize_adc(acc: i64, adc_bits: u32, range: f64) -> i64 {
    if adc_bits == 0 {
        return acc;
    }
    let max_code = (1i64 << (adc_bits - 1)) - 1;
    let step = range / max_code as f64;
    if step <= 0.0 {
        return acc;
    }
    let code = (acc as f64 / step).round() as i64;
    let code = code.clamp(-max_code, max_code);
    (code as f64 * step).round() as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn programmed(config: MacroConfig) -> SramCimMacro {
        let mut m = SramCimMacro::new(config);
        // 2x3 layer: W = [[1, -2, 3], [4, 5, -6]].
        m.program_layer(0, &[1, -2, 3, 4, 5, -6], 2, 3).unwrap();
        m
    }

    fn exact_config() -> MacroConfig {
        MacroConfig {
            adc_bits: 0,
            ..MacroConfig::default()
        }
    }

    #[test]
    fn exact_matvec_values() {
        let mut m = programmed(exact_config());
        let y = m.matvec(0, &[1, 1, 1], &[true, true]).unwrap();
        assert_eq!(y, vec![2, 3]);
        let y = m.matvec(0, &[2, 0, -1], &[true, true]).unwrap();
        assert_eq!(y, vec![-1, 14]);
    }

    #[test]
    fn unknown_layer_and_shape_errors() {
        let mut m = programmed(exact_config());
        assert!(matches!(
            m.matvec(7, &[1, 1, 1], &[true, true]),
            Err(SramError::UnknownLayer(7))
        ));
        assert!(m.matvec(0, &[1, 1], &[true, true]).is_err());
        assert!(m.matvec(0, &[1, 1, 1], &[true]).is_err());
        assert!(m.program_layer(1, &[1, 2], 2, 2).is_err());
    }

    #[test]
    fn row_gating_skips_work() {
        let mut m = programmed(exact_config());
        let y = m.matvec(0, &[1, 1, 1], &[false, true]).unwrap();
        assert_eq!(y[0], 0);
        assert_eq!(y[1], 3);
        assert_eq!(m.stats().rows_gated, 1);
        // ADC runs only for the active row.
        assert_eq!(m.stats().adc_conversions, 1);
    }

    #[test]
    fn reuse_matches_full_recompute() {
        // Identical results with and without reuse, for a random-ish
        // sequence of masked inputs.
        let seqs: Vec<Vec<i64>> = vec![
            vec![3, 0, -2],
            vec![3, 1, -2], // one change
            vec![3, 1, -2], // no change
            vec![0, 1, 5],  // all change
        ];
        let mut with = programmed(exact_config());
        let mut without = programmed(MacroConfig {
            reuse: false,
            ..exact_config()
        });
        for x in &seqs {
            let a = with.matvec(0, x, &[true, true]).unwrap();
            let b = without.matvec(0, x, &[true, true]).unwrap();
            assert_eq!(a, b, "input {x:?}");
        }
        // Reuse executed strictly fewer MACs.
        assert!(with.stats().macs_executed < without.stats().macs_executed);
        assert_eq!(
            with.stats().macs_full_equivalent,
            without.stats().macs_full_equivalent
        );
    }

    #[test]
    fn reuse_cost_proportional_to_changes() {
        let mut m = programmed(exact_config());
        m.matvec(0, &[1, 1, 1], &[true, true]).unwrap();
        let before = m.stats().macs_executed;
        assert_eq!(before, 6); // first call: full 2x3
                               // One changed input: 1 column × 2 rows = 2 MACs.
        m.matvec(0, &[1, 2, 1], &[true, true]).unwrap();
        assert_eq!(m.stats().macs_executed - before, 2);
        // Unchanged input: zero MACs.
        m.matvec(0, &[1, 2, 1], &[true, true]).unwrap();
        assert_eq!(m.stats().macs_executed - before, 2);
    }

    #[test]
    fn reset_reuse_forces_recompute() {
        let mut m = programmed(exact_config());
        m.matvec(0, &[1, 1, 1], &[true, true]).unwrap();
        m.reset_reuse();
        let before = m.stats().macs_executed;
        m.matvec(0, &[1, 1, 1], &[true, true]).unwrap();
        assert_eq!(m.stats().macs_executed - before, 6);
    }

    #[test]
    fn adc_quantization_bounds_error() {
        let config = MacroConfig {
            adc_bits: 8,
            adc_range_factor: 4.0,
            reuse: false,
        };
        let mut m = programmed(config);
        let exact = [2i64, 3];
        let y = m.matvec(0, &[1, 1, 1], &[true, true]).unwrap();
        // range = 4·√3·6·1 ≈ 41.6; step ≈ 0.33 → error ≤ 1 LSB-ish.
        for (a, b) in y.iter().zip(&exact) {
            assert!((a - b).abs() <= 1, "quantized {a} vs exact {b}");
        }
    }

    #[test]
    fn adc_saturates_large_accumulators() {
        let mut m = SramCimMacro::new(MacroConfig {
            adc_bits: 4,
            adc_range_factor: 0.5,
            reuse: false,
        });
        m.program_layer(0, &[100], 1, 1).unwrap();
        // range = 0.5·1·100·50 = 2500; acc = 5000 → saturates below.
        let y = m.matvec(0, &[50], &[true]).unwrap();
        assert!(y[0] < 5000);
    }

    #[test]
    fn workload_fraction() {
        let mut m = programmed(exact_config());
        m.matvec(0, &[1, 1, 1], &[true, true]).unwrap();
        m.matvec(0, &[1, 1, 1], &[true, true]).unwrap();
        // Full first call (6) + zero-delta second call (0) of 12 total.
        assert!((m.stats().workload_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stats_delta_since_subtracts_fieldwise() {
        let earlier = MacroStats {
            macs_executed: 10,
            macs_full_equivalent: 100,
            adc_conversions: 4,
            rows_gated: 2,
            matvec_calls: 1,
        };
        let later = MacroStats {
            macs_executed: 35,
            macs_full_equivalent: 300,
            adc_conversions: 10,
            rows_gated: 5,
            matvec_calls: 4,
        };
        let delta = later.delta_since(&earlier);
        assert_eq!(delta.macs_executed, 25);
        assert_eq!(delta.macs_full_equivalent, 200);
        assert_eq!(delta.adc_conversions, 6);
        assert_eq!(delta.rows_gated, 3);
        assert_eq!(delta.matvec_calls, 3);
        // A snapshot against itself is the zero delta.
        assert_eq!(later.delta_since(&later), MacroStats::default());
    }

    #[test]
    fn reuse_stays_exact_under_changing_row_masks() {
        // Rows masked in one iteration must still be correct later: the
        // accumulator state is maintained for every row.
        let mut m = programmed(exact_config());
        m.matvec(0, &[1, 1, 1], &[false, true]).unwrap();
        let y = m.matvec(0, &[1, 1, 1], &[true, false]).unwrap();
        assert_eq!(y[0], 2);
        let y = m.matvec(0, &[2, 1, 1], &[true, true]).unwrap();
        assert_eq!(y, vec![3, 7]);
    }
}
