//! Dropout-mask ordering: the paper's "optimal sample ordering".
//!
//! MC-Dropout iterations are exchangeable, so they can be executed in any
//! order. When consecutive iterations share more active neurons, the
//! compute-reuse scheme of [`crate::cim_macro`] performs fewer delta-MACs.
//! This module provides the greedy nearest-neighbour tour over the masks'
//! Hamming graph that the paper uses to pick that order.

use crate::{Result, SramError};

/// Hamming distance between two equal-length masks.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn hamming(a: &[bool], b: &[bool]) -> usize {
    assert_eq!(a.len(), b.len(), "hamming requires equal lengths");
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

/// Total switched bits along an execution order (first mask counts fully:
/// the pipeline starts from an all-zero state).
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..masks.len()`.
pub fn path_cost(masks: &[Vec<bool>], order: &[usize]) -> usize {
    assert_eq!(order.len(), masks.len(), "order must cover all masks");
    let mut cost = 0;
    let mut prev: Option<&Vec<bool>> = None;
    for &i in order {
        let m = &masks[i];
        cost += match prev {
            Some(p) => hamming(p, m),
            None => m.iter().filter(|&&b| b).count(),
        };
        prev = Some(m);
    }
    cost
}

/// Greedy nearest-neighbour ordering of masks by Hamming distance,
/// starting from the mask with the fewest active bits.
///
/// # Errors
///
/// Returns [`SramError::InvalidArgument`] for an empty or ragged mask set.
pub fn greedy_order(masks: &[Vec<bool>]) -> Result<Vec<usize>> {
    if masks.is_empty() {
        return Err(SramError::InvalidArgument(
            "ordering requires at least one mask".into(),
        ));
    }
    let len = masks[0].len();
    if masks.iter().any(|m| m.len() != len) {
        return Err(SramError::InvalidArgument(
            "all masks must have equal length".into(),
        ));
    }
    let n = masks.len();
    let mut visited = vec![false; n];
    // Start from the sparsest mask: cheapest cold start.
    let start = (0..n)
        .min_by_key(|&i| masks[i].iter().filter(|&&b| b).count())
        .expect("non-empty");
    let mut order = Vec::with_capacity(n);
    order.push(start);
    visited[start] = true;
    for _ in 1..n {
        let last = *order.last().expect("non-empty order");
        let next = (0..n)
            .filter(|&i| !visited[i])
            .min_by_key(|&i| hamming(&masks[last], &masks[i]))
            .expect("unvisited mask exists");
        order.push(next);
        visited[next] = true;
    }
    Ok(order)
}

/// Convenience: concatenates per-dropout-layer masks of one MC iteration
/// into a single vector for ordering purposes.
pub fn flatten_iteration(masks: &[Vec<bool>]) -> Vec<bool> {
    let mut flat = Vec::new();
    flatten_iteration_into(masks, &mut flat);
    flat
}

/// [`flatten_iteration`] into a reused buffer (cleared first) — the
/// allocation-free variant for per-frame callers.
pub fn flatten_iteration_into(masks: &[Vec<bool>], flat: &mut Vec<bool>) {
    flat.clear();
    flat.extend(masks.iter().flatten().copied());
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_math::rng::{Pcg32, SampleExt};

    fn random_masks(count: usize, len: usize, seed: u64) -> Vec<Vec<bool>> {
        let mut rng = Pcg32::seed_from_u64(seed);
        (0..count)
            .map(|_| (0..len).map(|_| rng.sample_bool(0.5)).collect())
            .collect()
    }

    #[test]
    fn hamming_basics() {
        assert_eq!(hamming(&[true, false], &[true, false]), 0);
        assert_eq!(hamming(&[true, false], &[false, true]), 2);
    }

    #[test]
    fn greedy_is_a_permutation() {
        let masks = random_masks(20, 64, 1);
        let order = greedy_order(&masks).unwrap();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn greedy_beats_identity_order_on_average() {
        let mut wins = 0;
        for seed in 0..10 {
            let masks = random_masks(30, 128, seed);
            let identity: Vec<usize> = (0..masks.len()).collect();
            let greedy = greedy_order(&masks).unwrap();
            if path_cost(&masks, &greedy) < path_cost(&masks, &identity) {
                wins += 1;
            }
        }
        assert!(wins >= 8, "greedy won only {wins}/10");
    }

    #[test]
    fn clustered_masks_order_by_cluster() {
        // Two groups of nearly identical masks: a good tour visits one
        // group fully before jumping to the other (exactly one big jump).
        let a = vec![true; 32];
        let b = vec![false; 32];
        let mut masks = Vec::new();
        for i in 0..4 {
            let mut m = a.clone();
            m[i] = false;
            masks.push(m);
            let mut m = b.clone();
            m[i] = true;
            masks.push(m);
        }
        let order = greedy_order(&masks).unwrap();
        let cost = path_cost(&masks, &order);
        // Within-group steps cost ≤ 2 bits; one inter-group jump ~30; plus
        // the cold start (≈1 for the sparsest b-like mask).
        assert!(cost < 32 + 8 * 2 + 4, "cost {cost}");
    }

    #[test]
    fn path_cost_counts_cold_start() {
        let masks = vec![vec![true, true, false]];
        assert_eq!(path_cost(&masks, &[0]), 2);
    }

    #[test]
    fn validation() {
        assert!(greedy_order(&[]).is_err());
        assert!(greedy_order(&[vec![true], vec![true, false]]).is_err());
    }

    #[test]
    fn flatten_concatenates() {
        let flat = flatten_iteration(&[vec![true, false], vec![false]]);
        assert_eq!(flat, vec![true, false, false]);
    }
}
