//! The generic predict/weight/resample particle-filter loop.

use crate::particle::{ParticleSet, ResampleBuffers};
use crate::Result;
use navicim_math::rng::Rng64;
use navicim_math::sample::ResampleScheme;

/// A stochastic motion model `p(x_t | u_t, x_{t-1})` (paper Eq. 1a).
pub trait Motion<S, U> {
    /// Samples a successor state given the previous state and control.
    fn sample(&self, state: &S, control: &U, rng: &mut dyn Rng64) -> S;

    /// [`Motion::sample`] with the model's noise standard deviations
    /// multiplied by `noise_scale` — the hook an odometry source with a
    /// live uncertainty estimate (MC-Dropout VO predictive variance)
    /// uses to widen the proposal when its control is untrustworthy,
    /// instead of silently biasing the filter with a confident wrong
    /// delta.
    ///
    /// Implementations must be bit-identical to [`Motion::sample`] at
    /// `noise_scale == 1.0` (the provided default ignores the factor
    /// entirely, which trivially satisfies that for models without a
    /// noise term to scale).
    fn sample_scaled(&self, state: &S, control: &U, noise_scale: f64, rng: &mut dyn Rng64) -> S {
        let _ = noise_scale;
        self.sample(state, control, rng)
    }
}

/// A measurement model `p(z_t | x_t)` (paper Eq. 1b), in log space.
///
/// Takes `&mut self` because hardware-backed implementations (the CIM
/// engine) consume noise-source state per evaluation.
///
/// The filter weighs whole particle sets through
/// [`Measurement::log_likelihood_batch`]; the provided implementation
/// loops over scalar calls, so existing scalar models keep working
/// unchanged, while batch-capable sensors (the `dyn MapBackend` maps in
/// `navicim-core`) override it to amortize per-evaluation overhead across
/// the frame.
pub trait Measurement<S, Z> {
    /// Log-likelihood of observation `obs` under state hypothesis `state`.
    fn log_likelihood(&mut self, state: &S, obs: &Z) -> f64;

    /// Log-likelihood of `obs` under every hypothesis in `states`,
    /// written to `out` in order.
    ///
    /// Implementations must be bit-identical to evaluating the states
    /// one by one with [`Measurement::log_likelihood`] (the provided
    /// implementation trivially is). The contract permits internal
    /// threading: stateful backends satisfy it by deriving per-evaluation
    /// randomness from a counter-based stream indexed by the absolute
    /// evaluation number (see `navicim_backend::par`), so the weight step
    /// scales across cores without perturbing a single particle weight.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != states.len()`.
    fn log_likelihood_batch(&mut self, states: &[S], obs: &Z, out: &mut [f64]) {
        assert_eq!(
            states.len(),
            out.len(),
            "output buffer must hold one log-likelihood per state"
        );
        for (o, s) in out.iter_mut().zip(states) {
            *o = self.log_likelihood(s, obs);
        }
    }
}

impl<S, U, F> Motion<S, U> for F
where
    F: Fn(&S, &U, &mut dyn Rng64) -> S,
{
    fn sample(&self, state: &S, control: &U, rng: &mut dyn Rng64) -> S {
        self(state, control, rng)
    }
}

/// Closure measurement models: any `FnMut(&S, &Z) -> f64` is a
/// [`Measurement`], mirroring the closure [`Motion`] impl, so tests and
/// examples can plug in ad-hoc sensors without a wrapper type.
impl<S, Z, F> Measurement<S, Z> for F
where
    F: FnMut(&S, &Z) -> f64,
{
    fn log_likelihood(&mut self, state: &S, obs: &Z) -> f64 {
        self(state, obs)
    }
}

/// Configuration of the particle-filter loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterConfig {
    /// Resampling scheme.
    pub scheme: ResampleScheme,
    /// Resample when `ESS < ess_fraction · N` (1.0 = always resample).
    pub ess_fraction: f64,
}

impl Default for FilterConfig {
    fn default() -> Self {
        Self {
            scheme: ResampleScheme::Systematic,
            ess_fraction: 0.5,
        }
    }
}

/// The sequential Monte-Carlo filter over a [`ParticleSet`].
#[derive(Debug, Clone)]
pub struct ParticleFilter<S> {
    particles: ParticleSet<S>,
    config: FilterConfig,
    resample_count: u64,
    step_count: u64,
    /// Reused per-update log-likelihood buffer (one slot per particle).
    ll_scratch: Vec<f64>,
    /// Reused resampling buffers (index/weight/state staging), so a
    /// warmed filter resamples without touching the heap.
    resample_scratch: ResampleBuffers<S>,
    /// Mean log-likelihood of the most recent measurement update.
    last_mean_ll: Option<f64>,
    /// ESS fraction of the most recent update, measured before any
    /// resampling.
    last_pre_resample_ess_fraction: Option<f64>,
}

impl<S: Clone> ParticleFilter<S> {
    /// Creates a filter from an initial particle set.
    pub fn new(particles: ParticleSet<S>, config: FilterConfig) -> Self {
        Self {
            particles,
            config,
            resample_count: 0,
            step_count: 0,
            ll_scratch: Vec::new(),
            resample_scratch: ResampleBuffers::default(),
            last_mean_ll: None,
            last_pre_resample_ess_fraction: None,
        }
    }

    /// The current particle set.
    pub fn particles(&self) -> &ParticleSet<S> {
        &self.particles
    }

    /// Mutable access (e.g. for reinitialization).
    pub fn particles_mut(&mut self) -> &mut ParticleSet<S> {
        &mut self.particles
    }

    /// Number of predict/update steps performed.
    pub fn steps(&self) -> u64 {
        self.step_count
    }

    /// Current cloud spread: the square root of the weighted covariance
    /// trace of a 3-vector projection of the state (for poses, the
    /// positional "1σ radius"). Allocation-free, so it can be sampled
    /// every frame — it is the uncertainty signal the gated localization
    /// pipeline arbitrates backends on.
    pub fn spread<F: Fn(&S) -> [f64; 3]>(&self, project: F) -> f64 {
        self.particles.weighted_covariance_trace(project).sqrt()
    }

    /// Effective sample size of the current weights (allocation-free;
    /// delegates to [`ParticleSet::ess`]).
    pub fn ess(&self) -> f64 {
        self.particles.ess()
    }

    /// Effective sample size as a fraction of the particle count, in
    /// (0, 1] — the scale-free form the uncertainty bus carries so gate
    /// thresholds do not depend on the configured population size.
    /// Clamped at 1: the true ESS cannot exceed the population, only
    /// its floating-point estimate can (by an ulp, on uniform weights).
    pub fn ess_fraction(&self) -> f64 {
        (self.particles.ess() / self.particles.len() as f64).min(1.0)
    }

    /// ESS fraction of the most recent measurement update, measured
    /// *after* reweighting but *before* any resampling (`None` before
    /// the first update). This is the weight-degeneracy signal a
    /// downstream consumer actually needs: the resampler resets
    /// collapsed weights to uniform on the spot, so the live
    /// [`Self::ess_fraction`] can never read below the configured
    /// resample threshold at frame boundaries.
    pub fn last_pre_resample_ess_fraction(&self) -> Option<f64> {
        self.last_pre_resample_ess_fraction
    }

    /// Mean log-likelihood of the last measurement update (`None` before
    /// the first update), averaged over the hypotheses that scored
    /// *finite* — stray `-inf` particles from hard-gating sensors do not
    /// blind the frame (a frame with no finite hypothesis reads `-inf`).
    /// Recorded before reweighting, so it is available even for a frame
    /// that ends in [`crate::FilterError::Degenerate`] — it is the raw
    /// per-frame map-agreement signal the likelihood innovation is
    /// computed from.
    pub fn last_mean_log_likelihood(&self) -> Option<f64> {
        self.last_mean_ll
    }

    /// Number of resampling events triggered.
    pub fn resamples(&self) -> u64 {
        self.resample_count
    }

    /// Prediction step: propagates every particle through the motion model.
    pub fn predict<U, M, R>(&mut self, control: &U, motion: &M, rng: &mut R)
    where
        M: Motion<S, U>,
        R: Rng64,
    {
        for s in self.particles.states_mut() {
            *s = motion.sample(s, control, rng);
        }
    }

    /// [`Self::predict`] with the motion noise scaled by `noise_scale`
    /// (through [`Motion::sample_scaled`]) — the per-frame covariance
    /// inflation hook of a closed odometry loop: an uncertain control
    /// widens the proposal instead of narrowing in on a biased delta.
    /// Bit-identical to [`Self::predict`] at `noise_scale == 1.0`.
    pub fn predict_scaled<U, M, R>(
        &mut self,
        control: &U,
        motion: &M,
        noise_scale: f64,
        rng: &mut R,
    ) where
        M: Motion<S, U>,
        R: Rng64,
    {
        for s in self.particles.states_mut() {
            *s = motion.sample_scaled(s, control, noise_scale, rng);
        }
    }

    /// Measurement update: weighs the whole particle set through the
    /// sensor's batch API, then resamples if the effective sample size
    /// dropped below the threshold.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::FilterError::Degenerate`] when all weights
    /// vanish.
    pub fn update<Z, M, R>(&mut self, obs: &Z, sensor: &mut M, rng: &mut R) -> Result<()>
    where
        M: Measurement<S, Z>,
        R: Rng64,
    {
        // Borrow juggling: reweight needs &mut particles while the
        // scratch buffer is detached, so take it out for the call.
        let mut lls = std::mem::take(&mut self.ll_scratch);
        lls.resize(self.particles.len(), 0.0);
        sensor.log_likelihood_batch(self.particles.states(), obs, &mut lls);
        let absorbed = self.absorb_log_likelihoods(&lls, rng);
        self.ll_scratch = lls;
        absorbed
    }

    /// Absorbs one frame's externally computed per-particle
    /// log-likelihoods: records the innovation signal, reweights, tracks
    /// pre-resample ESS and resamples on degeneracy.
    ///
    /// This is exactly the post-sensor half of [`Self::update`] (which
    /// delegates here), split out so a serving layer can evaluate the
    /// sensor batch elsewhere — e.g. coalesced across many sessions —
    /// and feed the results back bit-identically.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::FilterError::Degenerate`] when all weights
    /// vanish.
    ///
    /// # Panics
    ///
    /// Panics if `lls.len()` differs from the particle count.
    pub fn absorb_log_likelihoods<R>(&mut self, lls: &[f64], rng: &mut R) -> Result<()>
    where
        R: Rng64,
    {
        assert_eq!(
            lls.len(),
            self.particles.len(),
            "one log-likelihood per particle"
        );
        // Mean over the *finite* log-likelihoods only: a hard-gating
        // sensor may score a few out-of-support hypotheses at -inf
        // while the frame is otherwise fully informative, and one such
        // particle must not blind the innovation signal for the whole
        // frame. A frame with no finite hypothesis at all records -inf.
        let mut sum = 0.0;
        let mut finite = 0usize;
        for &ll in lls {
            if ll.is_finite() {
                sum += ll;
                finite += 1;
            }
        }
        self.last_mean_ll = Some(if finite == 0 {
            f64::NEG_INFINITY
        } else {
            sum / finite as f64
        });
        self.particles.reweight_log(lls)?;
        self.step_count += 1;
        let n = self.particles.len() as f64;
        let ess = self.particles.ess();
        // Record degeneracy as measured *before* resampling: the
        // resampler immediately resets collapsed weights to uniform, so
        // a post-resample reading can never show the collapse a gate's
        // ESS rescue needs to see.
        self.last_pre_resample_ess_fraction = Some((ess / n).min(1.0));
        if ess < self.config.ess_fraction * n {
            self.particles.resample_with_scratch(
                self.config.scheme,
                rng,
                &mut self.resample_scratch,
            );
            self.resample_count += 1;
        }
        Ok(())
    }

    /// Combined predict + update step.
    ///
    /// # Errors
    ///
    /// Propagates measurement-update errors.
    pub fn step<U, Z, MM, MS, R>(
        &mut self,
        control: &U,
        obs: &Z,
        motion: &MM,
        sensor: &mut MS,
        rng: &mut R,
    ) -> Result<()>
    where
        MM: Motion<S, U>,
        MS: Measurement<S, Z>,
        R: Rng64,
    {
        self.predict(control, motion, rng);
        self.update(obs, sensor, rng)
    }

    /// Combined predict + update step with the motion noise scaled by
    /// `noise_scale` — see [`Self::predict_scaled`]. Bit-identical to
    /// [`Self::step`] at `noise_scale == 1.0`.
    ///
    /// # Errors
    ///
    /// Propagates measurement-update errors.
    pub fn step_scaled<U, Z, MM, MS, R>(
        &mut self,
        control: &U,
        obs: &Z,
        motion: &MM,
        noise_scale: f64,
        sensor: &mut MS,
        rng: &mut R,
    ) -> Result<()>
    where
        MM: Motion<S, U>,
        MS: Measurement<S, Z>,
        R: Rng64,
    {
        self.predict_scaled(control, motion, noise_scale, rng);
        self.update(obs, sensor, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_math::rng::{Pcg32, SampleExt};
    use navicim_math::stats::normal_logpdf;

    /// 1-D random-walk localization: state is a scalar position, control is
    /// the commanded step, observation is a noisy position measurement.
    struct GaussianSensor {
        sigma: f64,
    }

    impl Measurement<f64, f64> for GaussianSensor {
        fn log_likelihood(&mut self, state: &f64, obs: &f64) -> f64 {
            normal_logpdf(*obs, *state, self.sigma)
        }
    }

    fn walk_motion() -> impl Motion<f64, f64> {
        |state: &f64, control: &f64, rng: &mut dyn Rng64| {
            state + control + rng.sample_normal(0.0, 0.05)
        }
    }

    #[test]
    fn tracks_a_moving_target() {
        let mut rng = Pcg32::seed_from_u64(1);
        let init: Vec<f64> = (0..500).map(|_| rng.sample_uniform(-10.0, 10.0)).collect();
        let mut pf = ParticleFilter::new(
            ParticleSet::from_states(init).unwrap(),
            FilterConfig::default(),
        );
        let mut sensor = GaussianSensor { sigma: 0.3 };
        let motion = walk_motion();
        let mut truth = 0.0;
        for step in 0..30 {
            let control = 0.2;
            truth += control;
            let obs = truth + rng.sample_normal(0.0, 0.3);
            pf.step(&control, &obs, &motion, &mut sensor, &mut rng)
                .unwrap();
            if step > 5 {
                let est = pf.particles().weighted_mean(|s| *s);
                assert!(
                    (est - truth).abs() < 0.5,
                    "step {step}: est {est} truth {truth}"
                );
            }
        }
        assert!(pf.steps() == 30);
    }

    #[test]
    fn uncertainty_shrinks_with_measurements() {
        let mut rng = Pcg32::seed_from_u64(2);
        let init: Vec<f64> = (0..1000).map(|_| rng.sample_uniform(-10.0, 10.0)).collect();
        let mut pf = ParticleFilter::new(
            ParticleSet::from_states(init).unwrap(),
            FilterConfig::default(),
        );
        let mut sensor = GaussianSensor { sigma: 0.5 };
        let motion = walk_motion();
        let var_before = pf.particles().weighted_variance(|s| *s);
        for _ in 0..10 {
            pf.step(&0.0, &3.0, &motion, &mut sensor, &mut rng).unwrap();
        }
        let var_after = pf.particles().weighted_variance(|s| *s);
        assert!(var_after < var_before * 0.05, "{var_before} -> {var_after}");
        let est = pf.particles().weighted_mean(|s| *s);
        assert!((est - 3.0).abs() < 0.3);
    }

    #[test]
    fn resampling_triggered_by_skewed_weights() {
        let mut rng = Pcg32::seed_from_u64(3);
        let init: Vec<f64> = (0..200).map(|_| rng.sample_uniform(-10.0, 10.0)).collect();
        let mut pf = ParticleFilter::new(
            ParticleSet::from_states(init).unwrap(),
            FilterConfig {
                ess_fraction: 0.5,
                ..FilterConfig::default()
            },
        );
        let mut sensor = GaussianSensor { sigma: 0.1 }; // sharp likelihood
        let motion = walk_motion();
        pf.step(&0.0, &0.0, &motion, &mut sensor, &mut rng).unwrap();
        assert!(pf.resamples() >= 1);
    }

    #[test]
    fn no_resampling_when_threshold_zero() {
        let mut rng = Pcg32::seed_from_u64(4);
        let init: Vec<f64> = (0..100).map(|_| rng.sample_uniform(-5.0, 5.0)).collect();
        let mut pf = ParticleFilter::new(
            ParticleSet::from_states(init).unwrap(),
            FilterConfig {
                ess_fraction: 0.0,
                ..FilterConfig::default()
            },
        );
        let mut sensor = GaussianSensor { sigma: 0.1 };
        let motion = walk_motion();
        for _ in 0..5 {
            pf.step(&0.0, &1.0, &motion, &mut sensor, &mut rng).unwrap();
        }
        assert_eq!(pf.resamples(), 0);
    }

    #[test]
    fn closure_measurement_model_works() {
        // Mirrors `walk_motion`: both models supplied as plain closures.
        let mut rng = Pcg32::seed_from_u64(6);
        let init: Vec<f64> = (0..300).map(|_| rng.sample_uniform(-10.0, 10.0)).collect();
        let mut pf = ParticleFilter::new(
            ParticleSet::from_states(init).unwrap(),
            FilterConfig::default(),
        );
        let motion = walk_motion();
        let mut sensor = |state: &f64, obs: &f64| normal_logpdf(*obs, *state, 0.4);
        for _ in 0..10 {
            pf.step(&0.0, &2.0, &motion, &mut sensor, &mut rng).unwrap();
        }
        let est = pf.particles().weighted_mean(|s| *s);
        assert!((est - 2.0).abs() < 0.3, "estimate {est}");
    }

    #[test]
    fn default_batch_adapter_matches_scalar_loop() {
        let states: Vec<f64> = vec![-1.0, 0.0, 0.5, 2.0];
        let mut sensor = GaussianSensor { sigma: 0.7 };
        let obs = 0.25;
        let scalar: Vec<f64> = states
            .iter()
            .map(|s| sensor.log_likelihood(s, &obs))
            .collect();
        let mut batched = vec![0.0; states.len()];
        sensor.log_likelihood_batch(&states, &obs, &mut batched);
        assert_eq!(scalar, batched);
    }

    #[test]
    fn ess_fraction_and_mean_ll_signals() {
        let mut rng = Pcg32::seed_from_u64(7);
        let init: Vec<f64> = (0..50).map(|_| rng.sample_uniform(-1.0, 1.0)).collect();
        let mut pf = ParticleFilter::new(
            ParticleSet::from_states(init).unwrap(),
            FilterConfig::default(),
        );
        // Before any update: uniform weights, no likelihood history.
        assert!((pf.ess() - 50.0).abs() < 1e-9);
        assert!((pf.ess_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(pf.last_mean_log_likelihood(), None);
        let mut sensor = GaussianSensor { sigma: 0.3 };
        let motion = walk_motion();
        pf.step(&0.0, &0.2, &motion, &mut sensor, &mut rng).unwrap();
        assert!(pf.ess_fraction() > 0.0 && pf.ess_fraction() <= 1.0);
        let mean_ll = pf.last_mean_log_likelihood().expect("update recorded");
        // A Gaussian sensor over a bounded cloud yields finite means.
        assert!(mean_ll.is_finite());
    }

    #[test]
    fn degenerate_all_equal_weights_keep_full_ess() {
        // An uninformative measurement (identical log-likelihood for every
        // hypothesis) must leave the weights — and the ESS fraction —
        // untouched.
        let mut rng = Pcg32::seed_from_u64(8);
        let init: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let mut pf = ParticleFilter::new(
            ParticleSet::from_states(init).unwrap(),
            FilterConfig {
                ess_fraction: 0.0,
                ..FilterConfig::default()
            },
        );
        let mut flat = |_s: &f64, _o: &f64| -5.0;
        pf.update(&0.0, &mut flat, &mut rng).unwrap();
        assert!((pf.ess_fraction() - 1.0).abs() < 1e-9);
        assert_eq!(pf.last_mean_log_likelihood(), Some(-5.0));
    }

    #[test]
    fn single_particle_set_signals_are_well_defined() {
        let mut rng = Pcg32::seed_from_u64(9);
        let mut pf = ParticleFilter::new(
            ParticleSet::from_states(vec![1.5f64]).unwrap(),
            FilterConfig::default(),
        );
        assert!((pf.ess() - 1.0).abs() < 1e-12);
        assert!((pf.ess_fraction() - 1.0).abs() < 1e-12);
        // A one-particle cloud has zero covariance trace, hence spread 0.
        assert_eq!(pf.spread(|&s| [s, 0.0, 0.0]), 0.0);
        let mut sensor = GaussianSensor { sigma: 0.5 };
        let motion = walk_motion();
        pf.step(&0.0, &1.5, &motion, &mut sensor, &mut rng).unwrap();
        assert!((pf.ess_fraction() - 1.0).abs() < 1e-12);
        assert!(pf.last_mean_log_likelihood().unwrap().is_finite());
    }

    #[test]
    fn stray_neg_inf_particles_do_not_blind_the_mean_ll() {
        // A hard-gating sensor scores one out-of-support hypothesis at
        // -inf; the frame's mean must average the remaining finite
        // hypotheses instead of collapsing to -inf.
        let mut rng = Pcg32::seed_from_u64(11);
        let mut pf = ParticleFilter::new(
            ParticleSet::from_states(vec![0.0f64, 1.0, 2.0, 50.0]).unwrap(),
            FilterConfig {
                ess_fraction: 0.0,
                ..FilterConfig::default()
            },
        );
        let mut gating = |state: &f64, _obs: &f64| {
            if *state > 10.0 {
                f64::NEG_INFINITY
            } else {
                -*state
            }
        };
        pf.update(&0.0, &mut gating, &mut rng).unwrap();
        // Mean of {-0, -1, -2}; the -inf particle is excluded.
        assert_eq!(pf.last_mean_log_likelihood(), Some(-1.0));
    }

    #[test]
    fn mean_ll_recorded_even_for_degenerate_frames() {
        let mut rng = Pcg32::seed_from_u64(10);
        let mut pf = ParticleFilter::new(
            ParticleSet::from_states(vec![0.0f64; 5]).unwrap(),
            FilterConfig::default(),
        );
        let mut killer = |_s: &f64, _o: &f64| f64::NEG_INFINITY;
        let motion = walk_motion();
        assert!(pf.step(&0.0, &0.0, &motion, &mut killer, &mut rng).is_err());
        // The signal survived the failed reweight.
        assert_eq!(pf.last_mean_log_likelihood(), Some(f64::NEG_INFINITY));
    }

    #[test]
    fn degenerate_measurement_propagates_error() {
        let mut rng = Pcg32::seed_from_u64(5);
        let init = vec![0.0f64; 10];
        let mut pf = ParticleFilter::new(
            ParticleSet::from_states(init).unwrap(),
            FilterConfig::default(),
        );
        struct Killer;
        impl Measurement<f64, f64> for Killer {
            fn log_likelihood(&mut self, _: &f64, _: &f64) -> f64 {
                f64::NEG_INFINITY
            }
        }
        let motion = walk_motion();
        assert!(pf.step(&0.0, &0.0, &motion, &mut Killer, &mut rng).is_err());
    }
}
