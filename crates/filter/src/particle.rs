//! Weighted particle sets.

use crate::{FilterError, Result};
use navicim_math::rng::Rng64;
use navicim_math::sample::{effective_sample_size, ResampleScheme, ResampleScratch};

/// A set of weighted hypotheses over states of type `S`.
///
/// Weights are kept normalized (summing to 1) after every mutation through
/// the public API.
#[derive(Debug, Clone, PartialEq)]
pub struct ParticleSet<S> {
    states: Vec<S>,
    weights: Vec<f64>,
}

/// Reusable buffers for [`ParticleSet::resample_with_scratch`]: selected
/// indices, the scheme's own scratch and the next-generation state
/// staging. Owned by the caller (the filter), so the set itself stays a
/// pure value type — equality and clones see only states and weights.
#[derive(Debug, Clone)]
pub struct ResampleBuffers<S> {
    indices: Vec<usize>,
    scheme: ResampleScratch,
    states: Vec<S>,
}

// Manual impl: the derive would demand `S: Default`, which empty buffers
// have no use for.
impl<S> Default for ResampleBuffers<S> {
    fn default() -> Self {
        Self {
            indices: Vec::new(),
            scheme: ResampleScratch::default(),
            states: Vec::new(),
        }
    }
}

impl<S: Clone> ParticleSet<S> {
    /// Creates a uniformly weighted set from states.
    ///
    /// # Errors
    ///
    /// Returns [`FilterError::InvalidArgument`] for an empty state list.
    pub fn from_states(states: Vec<S>) -> Result<Self> {
        if states.is_empty() {
            return Err(FilterError::InvalidArgument(
                "particle set requires at least one state".into(),
            ));
        }
        let n = states.len();
        Ok(Self {
            states,
            weights: vec![1.0 / n as f64; n],
        })
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Returns `true` for an empty set (never constructible through the
    /// public API; kept for the `len`/`is_empty` convention).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The particle states.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Mutable access to the particle states (weights are untouched).
    pub fn states_mut(&mut self) -> &mut [S] {
        &mut self.states
    }

    /// The normalized weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Effective sample size of the current weights.
    pub fn ess(&self) -> f64 {
        effective_sample_size(&self.weights)
    }

    /// Index and state of the highest-weight particle.
    pub fn map_estimate(&self) -> (usize, &S) {
        let (idx, _) = self
            .weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("weights are finite"))
            .expect("set is non-empty");
        (idx, &self.states[idx])
    }

    /// Reweights particles by per-particle *log*-likelihoods, using a
    /// log-sum-exp normalization for numerical stability.
    ///
    /// # Errors
    ///
    /// Returns [`FilterError::Degenerate`] if every log-likelihood is
    /// `-inf`, and [`FilterError::InvalidArgument`] on length mismatch.
    pub fn reweight_log(&mut self, log_likelihoods: &[f64]) -> Result<()> {
        if log_likelihoods.len() != self.len() {
            return Err(FilterError::InvalidArgument(format!(
                "expected {} log-likelihoods, got {}",
                self.len(),
                log_likelihoods.len()
            )));
        }
        // Streaming log-sum-exp over the combined log-weights
        // `c_i = ln(max(w_i, 1e-300)) + ll_i`, recomputing `c_i` per
        // pass instead of materializing it: this is the per-frame hot
        // path and must not touch the heap. Each pass visits particles
        // in index order with the exact operations of
        // [`log_sum_exp`] on a materialized slice, so the result is
        // bit-identical to the former `collect`-based implementation.
        let combined = |w: &f64, ll: &f64| w.max(1e-300).ln() + ll;
        let mut m = f64::NEG_INFINITY;
        for (w, ll) in self.weights.iter().zip(log_likelihoods) {
            m = m.max(combined(w, ll));
        }
        if m == f64::NEG_INFINITY || m.is_nan() {
            return Err(FilterError::Degenerate);
        }
        let mut sum = 0.0;
        for (w, ll) in self.weights.iter().zip(log_likelihoods) {
            sum += (combined(w, ll) - m).exp();
        }
        let lse = m + sum.ln();
        if lse == f64::NEG_INFINITY || lse.is_nan() {
            return Err(FilterError::Degenerate);
        }
        // Weights are only written once the frame is known non-degenerate,
        // so the error paths above leave the set untouched.
        for (w, ll) in self.weights.iter_mut().zip(log_likelihoods) {
            let c = combined(w, ll);
            *w = (c - lse).exp();
        }
        Ok(())
    }

    /// Resamples the set with the given scheme; weights become uniform.
    pub fn resample<R: Rng64 + ?Sized>(&mut self, scheme: ResampleScheme, rng: &mut R) {
        let mut scratch = ResampleBuffers::default();
        self.resample_with_scratch(scheme, rng, &mut scratch);
    }

    /// [`Self::resample`] through caller-owned buffers: the selected
    /// indices, the scheme's normalized-weight scratch and the
    /// next-generation state staging all live in `scratch`, so a filter
    /// that resamples every few frames stays allocation-free once the
    /// buffers have grown to the particle count. Bit-identical to
    /// [`Self::resample`], which delegates here.
    pub fn resample_with_scratch<R: Rng64 + ?Sized>(
        &mut self,
        scheme: ResampleScheme,
        rng: &mut R,
        scratch: &mut ResampleBuffers<S>,
    ) {
        scheme.resample_into(
            &self.weights,
            rng,
            &mut scratch.scheme,
            &mut scratch.indices,
        );
        scratch.states.clear();
        scratch
            .states
            .extend(scratch.indices.iter().map(|&i| self.states[i].clone()));
        // The previous generation swaps into the scratch and is reused as
        // next resample's staging capacity (clear-don't-drop).
        std::mem::swap(&mut self.states, &mut scratch.states);
        let n = self.states.len();
        self.weights.clear();
        self.weights.resize(n, 1.0 / n as f64);
    }

    /// Weighted mean of a scalar function of the state.
    pub fn weighted_mean<F: Fn(&S) -> f64>(&self, f: F) -> f64 {
        self.states
            .iter()
            .zip(&self.weights)
            .map(|(s, w)| w * f(s))
            .sum()
    }

    /// Trace of the weighted covariance of a 3-vector projection of the
    /// state (e.g. a pose's position), computed in two allocation-free
    /// passes over the particles.
    ///
    /// Per axis this accumulates exactly the sums of
    /// [`Self::weighted_mean`]/[`Self::weighted_variance`] in particle
    /// order, so it is bit-identical to three separate variance calls —
    /// at a third of the traversals, cheap enough to read every frame as
    /// an uncertainty gate signal.
    pub fn weighted_covariance_trace<F: Fn(&S) -> [f64; 3]>(&self, f: F) -> f64 {
        let mut mean = [0.0f64; 3];
        for (s, &w) in self.states.iter().zip(&self.weights) {
            let v = f(s);
            for (m, x) in mean.iter_mut().zip(v) {
                *m += w * x;
            }
        }
        let mut var = [0.0f64; 3];
        for (s, &w) in self.states.iter().zip(&self.weights) {
            let v = f(s);
            for ((acc, x), m) in var.iter_mut().zip(v).zip(mean) {
                let d = x - m;
                *acc += w * d * d;
            }
        }
        var[0] + var[1] + var[2]
    }

    /// Weighted per-axis mean and variance of a 3-vector projection of
    /// the state, in one fused two-pass traversal.
    ///
    /// The accumulation order per axis is exactly that of
    /// [`Self::weighted_covariance_trace`], so the component sum of the
    /// returned variances is bit-identical to the trace — this is the
    /// NEES-consistency read: the diagonal of the filter covariance next
    /// to the mean it was taken around.
    pub fn weighted_moments<F: Fn(&S) -> [f64; 3]>(&self, f: F) -> ([f64; 3], [f64; 3]) {
        let mut mean = [0.0f64; 3];
        for (s, &w) in self.states.iter().zip(&self.weights) {
            let v = f(s);
            for (m, x) in mean.iter_mut().zip(v) {
                *m += w * x;
            }
        }
        let mut var = [0.0f64; 3];
        for (s, &w) in self.states.iter().zip(&self.weights) {
            let v = f(s);
            for ((acc, x), m) in var.iter_mut().zip(v).zip(mean) {
                let d = x - m;
                *acc += w * d * d;
            }
        }
        (mean, var)
    }

    /// Weighted variance of a scalar function of the state.
    pub fn weighted_variance<F: Fn(&S) -> f64>(&self, f: F) -> f64 {
        let mean = self.weighted_mean(&f);
        self.states
            .iter()
            .zip(&self.weights)
            .map(|(s, w)| {
                let d = f(s) - mean;
                w * d * d
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_math::approx_eq;
    use navicim_math::rng::Pcg32;

    #[test]
    fn construction_uniform_weights() {
        let set = ParticleSet::from_states(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(set.len(), 4);
        for &w in set.weights() {
            assert!(approx_eq(w, 0.25, 1e-12));
        }
        assert!(approx_eq(set.ess(), 4.0, 1e-9));
    }

    #[test]
    fn empty_rejected() {
        assert!(ParticleSet::<f64>::from_states(vec![]).is_err());
    }

    #[test]
    fn reweight_log_normalizes() {
        let mut set = ParticleSet::from_states(vec![0.0, 1.0, 2.0]).unwrap();
        set.reweight_log(&[-1000.0, -1000.0, -999.0]).unwrap();
        let total: f64 = set.weights().iter().sum();
        assert!(approx_eq(total, 1.0, 1e-12));
        // The better particle carries e^1 ≈ 2.72 times the weight.
        assert!(set.weights()[2] > set.weights()[0] * 2.5);
        assert_eq!(set.map_estimate().0, 2);
    }

    #[test]
    fn reweight_degenerate_detected() {
        let mut set = ParticleSet::from_states(vec![0.0, 1.0]).unwrap();
        assert_eq!(
            set.reweight_log(&[f64::NEG_INFINITY, f64::NEG_INFINITY]),
            Err(FilterError::Degenerate)
        );
    }

    #[test]
    fn reweight_length_mismatch() {
        let mut set = ParticleSet::from_states(vec![0.0, 1.0]).unwrap();
        assert!(set.reweight_log(&[0.0]).is_err());
    }

    #[test]
    fn ess_drops_after_skewed_reweight() {
        let mut set = ParticleSet::from_states((0..100).collect::<Vec<_>>()).unwrap();
        let lls: Vec<f64> = (0..100).map(|i| if i == 0 { 0.0 } else { -50.0 }).collect();
        set.reweight_log(&lls).unwrap();
        assert!(set.ess() < 1.5);
    }

    #[test]
    fn resample_concentrates_on_heavy_particle() {
        let mut set = ParticleSet::from_states(vec![10, 20, 30]).unwrap();
        set.reweight_log(&[-100.0, 0.0, -100.0]).unwrap();
        let mut rng = Pcg32::seed_from_u64(1);
        set.resample(ResampleScheme::Systematic, &mut rng);
        assert!(set.states().iter().all(|&s| s == 20));
        // Weights reset to uniform.
        assert!(approx_eq(set.ess(), 3.0, 1e-9));
    }

    #[test]
    fn weighted_moments() {
        let mut set = ParticleSet::from_states(vec![0.0, 10.0]).unwrap();
        set.reweight_log(&[0.0, 0.0]).unwrap();
        assert!(approx_eq(set.weighted_mean(|&s| s), 5.0, 1e-12));
        assert!(approx_eq(set.weighted_variance(|&s| s), 25.0, 1e-12));
    }

    #[test]
    fn covariance_trace_matches_per_axis_variances() {
        use navicim_math::rng::SampleExt;
        let mut rng = Pcg32::seed_from_u64(12);
        let states: Vec<[f64; 3]> = (0..200)
            .map(|_| {
                [
                    rng.sample_normal(1.0, 0.5),
                    rng.sample_normal(-2.0, 0.2),
                    rng.sample_normal(0.0, 1.5),
                ]
            })
            .collect();
        let mut set = ParticleSet::from_states(states).unwrap();
        let lls: Vec<f64> = (0..200).map(|i| -((i % 7) as f64)).collect();
        set.reweight_log(&lls).unwrap();
        let trace = set.weighted_covariance_trace(|s| *s);
        let per_axis = set.weighted_variance(|s| s[0])
            + set.weighted_variance(|s| s[1])
            + set.weighted_variance(|s| s[2]);
        // Bit-identical, not just approximately equal: the fused pass
        // accumulates the same sums in the same order.
        assert_eq!(trace, per_axis);
    }

    #[test]
    fn moments_sum_is_bit_identical_to_covariance_trace() {
        use navicim_math::rng::SampleExt;
        let mut rng = Pcg32::seed_from_u64(77);
        let states: Vec<[f64; 3]> = (0..150)
            .map(|_| {
                [
                    rng.sample_normal(0.3, 0.9),
                    rng.sample_normal(1.1, 0.4),
                    rng.sample_normal(-0.7, 2.0),
                ]
            })
            .collect();
        let mut set = ParticleSet::from_states(states).unwrap();
        let lls: Vec<f64> = (0..150).map(|i| -((i % 5) as f64) * 0.3).collect();
        set.reweight_log(&lls).unwrap();
        let (mean, var) = set.weighted_moments(|s| *s);
        assert_eq!(
            var[0] + var[1] + var[2],
            set.weighted_covariance_trace(|s| *s)
        );
        for axis in 0..3 {
            assert_eq!(mean[axis], set.weighted_mean(|s| s[axis]));
            assert!(var[axis] > 0.0);
        }
    }
}
