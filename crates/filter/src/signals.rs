//! Streaming uncertainty signals derived from the filter's likelihoods.
//!
//! The particle spread alone cannot distinguish "collapsed and correct"
//! from "collapsed but biased": a confidently wrong cloud is tight, yet
//! its measurement likelihoods sag below their recent trend. This module
//! tracks that trend so the gated pipeline can read a *likelihood
//! innovation* — the per-frame mean log-likelihood minus its running
//! exponentially-weighted average — as a second uncertainty signal next
//! to spread and effective sample size.

use crate::{FilterError, Result};

/// Default EWMA smoothing factor of [`InnovationTracker`]: roughly a
/// five-frame memory, short enough to track scene changes and long
/// enough to ride out single-frame noise.
pub const DEFAULT_INNOVATION_ALPHA: f64 = 0.2;

/// Running innovation of a per-frame scalar (the filter's mean
/// log-likelihood) against its exponentially-weighted moving average.
///
/// Feed one observation per frame with [`InnovationTracker::observe`];
/// it returns `observation - ewma_of_past_frames` and then folds the
/// observation into the average. Negative innovations mean the frame
/// matched the map *worse* than the recent trend — the "collapsed but
/// biased" symptom.
///
/// Warm-up is explicit: the first *finite* observation only primes the
/// average (there is no past trend to deviate from), so the innovation
/// goes live on the second finite frame — until then [`Self::observe`]
/// returns `None` and [`Self::last_innovation`] reads `None`, which is
/// distinct from a genuine zero-innovation reading (`Some(0.0)`).
///
/// Non-finite observations (a frame whose every hypothesis scored
/// `-inf`) are skipped: the history is left untouched — so one blind
/// frame cannot poison the average — and the innovation reads `None`
/// for that frame (no fresh evidence, not "matched the trend exactly").
#[derive(Debug, Clone, PartialEq)]
pub struct InnovationTracker {
    alpha: f64,
    ewma: Option<f64>,
    last: Option<f64>,
}

impl Default for InnovationTracker {
    fn default() -> Self {
        Self {
            alpha: DEFAULT_INNOVATION_ALPHA,
            ewma: None,
            last: None,
        }
    }
}

impl InnovationTracker {
    /// Creates a tracker with smoothing factor `alpha` (the weight of the
    /// newest observation in the average).
    ///
    /// # Errors
    ///
    /// Returns [`FilterError::InvalidArgument`] unless `0 < alpha <= 1`.
    pub fn new(alpha: f64) -> Result<Self> {
        if !(alpha > 0.0) || !(alpha <= 1.0) {
            return Err(FilterError::InvalidArgument(format!(
                "innovation alpha must be in (0, 1], got {alpha}"
            )));
        }
        Ok(Self {
            alpha,
            ewma: None,
            last: None,
        })
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The current running average (`None` before the first finite
    /// observation).
    pub fn history(&self) -> Option<f64> {
        self.ewma
    }

    /// Records one per-frame observation and returns its innovation
    /// against the average of *past* frames. `None` marks warm-up (the
    /// first finite observation, which only primes the average) and
    /// skipped non-finite observations — both cases where "no reading"
    /// must not masquerade as a genuine zero innovation.
    pub fn observe(&mut self, value: f64) -> Option<f64> {
        if !value.is_finite() {
            // Skip the blind frame: history untouched, no fresh reading.
            self.last = None;
            return None;
        }
        let innovation = self.ewma.map(|mean| value - mean);
        self.ewma = Some(match self.ewma {
            Some(mean) => mean + self.alpha * (value - mean),
            None => value,
        });
        self.last = innovation;
        innovation
    }

    /// Innovation of the most recent observation (`None` during warm-up,
    /// before any finite observation has followed the priming one, and
    /// after a skipped non-finite frame) — the value a per-frame
    /// consumer reads *before* the next frame is weighed.
    pub fn last_innovation(&self) -> Option<f64> {
        self.last
    }

    /// Clears the history for a fresh run.
    pub fn reset(&mut self) {
        self.ewma = None;
        self.last = None;
    }
}

/// Tuning of a [`FaultDetector`]'s one-sided CUSUM over the innovation
/// stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultDetectorConfig {
    /// Per-frame slack (≥ 0, finite): innovation deficits smaller than
    /// this are treated as in-family wobble and do not accumulate.
    pub drift: f64,
    /// Alarm level (> 0, finite): the detector fires once the
    /// accumulated deficit reaches this many nats.
    pub threshold: f64,
    /// Finite innovation readings to swallow before the statistic arms —
    /// the filter's own convergence transient (spread collapse,
    /// relocalization swings) must not read as a fault.
    pub warmup: usize,
}

impl Default for FaultDetectorConfig {
    fn default() -> Self {
        // Clean tracking wobbles the innovation by a few nats; genuine
        // faults (blind frames, kidnaps, spoofed returns) sag it by tens
        // to hundreds. Slack 2 / level 10 fires within 1-2 frames on a
        // hard fault while a clean run never accumulates.
        Self {
            drift: 2.0,
            threshold: 10.0,
            warmup: 3,
        }
    }
}

/// CUSUM-style fault detector over a likelihood-innovation stream.
///
/// Wraps an [`InnovationTracker`]'s per-frame readings in the standard
/// one-sided cumulative-sum test: with innovation `i`, the statistic
/// advances as `s = max(0, s + (-i) - drift)` and the detector alarms
/// once `s >= threshold`. Sustained *negative* innovations — frames
/// matching the map worse than their own recent trend, the common
/// symptom of sensor dropout, kidnapping and measurement spoofing —
/// accumulate; positive innovations actively drain the statistic, so
/// recovery self-clears the evidence.
///
/// Warm-up is two-layered: the tracker's own `None` readings (priming
/// frame, blind frames) carry no evidence and leave the statistic
/// untouched, and the first [`FaultDetectorConfig::warmup`] finite
/// readings are swallowed so a converging filter's transient cannot
/// trip the alarm. The alarm latches until [`FaultDetector::reset`]
/// re-arms it — the consumer decides when the system is healthy again.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultDetector {
    config: FaultDetectorConfig,
    score: f64,
    readings: usize,
    alarmed: bool,
}

impl FaultDetector {
    /// Validates the tuning and builds an armed detector.
    ///
    /// # Errors
    ///
    /// Returns [`FilterError::InvalidArgument`] unless `drift` is finite
    /// and ≥ 0 and `threshold` is finite and > 0.
    pub fn new(config: FaultDetectorConfig) -> Result<Self> {
        if !config.drift.is_finite() || !(config.drift >= 0.0) {
            return Err(FilterError::InvalidArgument(format!(
                "fault-detector drift must be finite and >= 0, got {}",
                config.drift
            )));
        }
        if !config.threshold.is_finite() || !(config.threshold > 0.0) {
            return Err(FilterError::InvalidArgument(format!(
                "fault-detector threshold must be finite and > 0, got {}",
                config.threshold
            )));
        }
        Ok(Self {
            config,
            score: 0.0,
            readings: 0,
            alarmed: false,
        })
    }

    /// The tuning this detector runs.
    pub fn config(&self) -> &FaultDetectorConfig {
        &self.config
    }

    /// The current CUSUM statistic, in nats of accumulated deficit.
    pub fn score(&self) -> f64 {
        self.score
    }

    /// Whether the alarm is latched.
    pub fn alarmed(&self) -> bool {
        self.alarmed
    }

    /// Feeds one frame's innovation reading (`None` = no reading this
    /// frame: tracker warm-up or a blind frame) and returns the latched
    /// alarm state. Non-finite readings are ignored like `None` — the
    /// upstream tracker never emits them, but the detector must not
    /// corrupt its statistic if fed one directly.
    pub fn observe(&mut self, innovation: Option<f64>) -> bool {
        if let Some(i) = innovation {
            if i.is_finite() {
                self.readings += 1;
                if self.readings > self.config.warmup {
                    self.score = (self.score + (-i) - self.config.drift).max(0.0);
                    if self.score >= self.config.threshold {
                        self.alarmed = true;
                    }
                }
            }
        }
        self.alarmed
    }

    /// Re-arms the detector: clears the statistic and the latched alarm.
    /// The warm-up count is *kept* — the filter is still converged, so
    /// the next deficit counts immediately.
    pub fn reset(&mut self) {
        self.score = 0.0;
        self.alarmed = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(InnovationTracker::new(0.0).is_err());
        assert!(InnovationTracker::new(-0.1).is_err());
        assert!(InnovationTracker::new(1.1).is_err());
        assert!(InnovationTracker::new(f64::NAN).is_err());
        assert!(InnovationTracker::new(1.0).is_ok());
        assert!(InnovationTracker::new(0.2).is_ok());
    }

    #[test]
    fn first_observation_is_warm_up_not_zero() {
        let mut t = InnovationTracker::default();
        assert_eq!(t.last_innovation(), None);
        assert_eq!(t.history(), None);
        // The first finite frame primes the average but yields no
        // innovation reading — `None`, explicitly distinct from the
        // genuine zero of a frame that matched the trend exactly.
        assert_eq!(t.observe(-3.0), None);
        assert_eq!(t.history(), Some(-3.0));
        assert_eq!(t.last_innovation(), None);
        // The second finite frame is the first live reading.
        assert_eq!(t.observe(-3.0), Some(0.0));
        assert_eq!(t.last_innovation(), Some(0.0));
    }

    #[test]
    fn innovation_is_delta_against_ewma() {
        let mut t = InnovationTracker::new(0.5).unwrap();
        t.observe(10.0);
        // EWMA = 10; a repeat of the mean is a genuine zero innovation.
        assert_eq!(t.observe(10.0), Some(0.0));
        // EWMA still 10; a drop of 4 reads as -4.
        assert_eq!(t.observe(6.0), Some(-4.0));
        assert_eq!(t.last_innovation(), Some(-4.0));
        // EWMA moved to 8 = 10 + 0.5 * (6 - 10).
        assert_eq!(t.history(), Some(8.0));
        assert_eq!(t.observe(9.0), Some(1.0));
    }

    #[test]
    fn non_finite_observations_skipped() {
        let mut t = InnovationTracker::new(0.5).unwrap();
        t.observe(2.0);
        t.observe(2.0);
        assert_eq!(t.last_innovation(), Some(0.0));
        // A blind frame clears the live reading instead of faking a 0.
        assert_eq!(t.observe(f64::NEG_INFINITY), None);
        assert_eq!(t.last_innovation(), None);
        assert_eq!(t.observe(f64::NAN), None);
        // History untouched by the blind frames.
        assert_eq!(t.history(), Some(2.0));
        assert_eq!(t.observe(3.0), Some(1.0));
    }

    #[test]
    fn all_neg_inf_frames_never_poison_the_average() {
        // Regression: a stretch of frames whose every hypothesis scored
        // -inf (hard-gating sensor, fully out-of-support cloud) must
        // leave the EWMA finite and the tracker ready to resume — the
        // -inf mean log-likelihood must never be folded into the
        // average.
        let mut t = InnovationTracker::default();
        t.observe(-5.0);
        t.observe(-5.0);
        for _ in 0..10 {
            assert_eq!(t.observe(f64::NEG_INFINITY), None);
        }
        assert_eq!(t.history(), Some(-5.0));
        assert!(t.history().unwrap().is_finite());
        // The first frame back on the map reads against the intact
        // history, not against a poisoned -inf average.
        assert_eq!(t.observe(-4.0), Some(1.0));
        // And a tracker that has seen *only* -inf frames is still in
        // warm-up: no history, no reading.
        let mut blind = InnovationTracker::default();
        for _ in 0..5 {
            assert_eq!(blind.observe(f64::NEG_INFINITY), None);
        }
        assert_eq!(blind.history(), None);
        assert_eq!(blind.last_innovation(), None);
    }

    #[test]
    fn alpha_one_tracks_the_last_value() {
        let mut t = InnovationTracker::new(1.0).unwrap();
        t.observe(1.0);
        assert_eq!(t.observe(5.0), Some(4.0));
        // With alpha = 1 the EWMA *is* the previous observation.
        assert_eq!(t.observe(5.0), Some(0.0));
    }

    #[test]
    fn reset_clears_history() {
        let mut t = InnovationTracker::default();
        t.observe(1.0);
        t.observe(2.0);
        t.reset();
        assert_eq!(t.history(), None);
        assert_eq!(t.last_innovation(), None);
        assert_eq!(t.observe(7.0), None);
    }

    #[test]
    fn spoofed_likelihood_burst_reads_as_deep_negative_innovation() {
        // A spoofing burst replaces plausible likelihoods with a
        // constant sag. The tracker must report the full deficit on the
        // first spoofed frame, then drift its average toward the spoofed
        // level (so *recovery* later reads as a large positive
        // innovation) — never NaN, never a sign flip.
        let mut t = InnovationTracker::default();
        t.observe(-2.0);
        for _ in 0..5 {
            t.observe(-2.0);
        }
        let first = t.observe(-300.0).unwrap();
        assert!((first - (-298.0)).abs() < 1e-9);
        let mut prev = first;
        for _ in 0..8 {
            let i = t.observe(-300.0).unwrap();
            assert!(i.is_finite() && i <= 0.0);
            // Each spoofed frame pulls the average closer: the deficit
            // shrinks monotonically toward zero.
            assert!(i > prev - 1e-9);
            prev = i;
        }
        // End of the burst: the first honest frame reads as a large
        // positive innovation against the poisoned average.
        let back = t.observe(-2.0).unwrap();
        assert!(back > 100.0);
    }

    #[test]
    fn interleaved_neg_inf_and_spoofed_frames_keep_the_tracker_sane() {
        // Adversarial worst case: alternating fully-blind (-inf) frames
        // and spoofed finite sags. Blind frames must stay invisible to
        // the history while the spoofed frames move it; no interleaving
        // order may produce a non-finite average.
        let mut t = InnovationTracker::default();
        t.observe(-3.0);
        t.observe(-3.0);
        for k in 0..20 {
            if k % 2 == 0 {
                assert_eq!(t.observe(f64::NEG_INFINITY), None);
            } else {
                let i = t.observe(-50.0).unwrap();
                assert!(i.is_finite() && i < 0.0);
            }
            assert!(t.history().unwrap().is_finite());
        }
    }

    // ---- FaultDetector ----

    #[test]
    fn detector_validation_rejects_bad_tunings() {
        for drift in [f64::NAN, f64::INFINITY, -0.1] {
            assert!(FaultDetector::new(FaultDetectorConfig {
                drift,
                ..FaultDetectorConfig::default()
            })
            .is_err());
        }
        for threshold in [f64::NAN, f64::INFINITY, 0.0, -1.0] {
            assert!(FaultDetector::new(FaultDetectorConfig {
                threshold,
                ..FaultDetectorConfig::default()
            })
            .is_err());
        }
        assert!(FaultDetector::new(FaultDetectorConfig::default()).is_ok());
        // Zero drift (no slack) is a legal, maximally sensitive tuning.
        assert!(FaultDetector::new(FaultDetectorConfig {
            drift: 0.0,
            ..FaultDetectorConfig::default()
        })
        .is_ok());
    }

    #[test]
    fn detector_ignores_warmup_and_missing_readings() {
        let mut d = FaultDetector::new(FaultDetectorConfig {
            drift: 1.0,
            threshold: 5.0,
            warmup: 2,
        })
        .unwrap();
        // `None` readings (tracker warm-up, blind frames) carry no
        // evidence in either direction.
        assert!(!d.observe(None));
        assert_eq!(d.score(), 0.0);
        // The first two finite readings are swallowed even when they
        // scream fault.
        assert!(!d.observe(Some(-100.0)));
        assert!(!d.observe(Some(-100.0)));
        assert_eq!(d.score(), 0.0);
        // The third reading counts.
        assert!(d.observe(Some(-100.0)));
        assert!(d.alarmed());
    }

    #[test]
    fn detector_accumulates_sustained_deficit_but_not_wobble() {
        let mut d = FaultDetector::new(FaultDetectorConfig {
            drift: 2.0,
            threshold: 10.0,
            warmup: 0,
        })
        .unwrap();
        // In-family wobble (|i| <= drift) never accumulates.
        for i in [-1.0, 0.5, -2.0, 1.5, -0.3, 2.0] {
            assert!(!d.observe(Some(i)));
            assert_eq!(d.score(), 0.0);
        }
        // A sustained moderate sag accumulates to the alarm: deficit
        // (5 - 2) = 3 per frame reaches 10 on the 4th frame.
        for _ in 0..3 {
            assert!(!d.observe(Some(-5.0)));
        }
        assert!(d.observe(Some(-5.0)));
        assert!(d.alarmed());
        // The alarm latches even through healthy frames.
        assert!(d.observe(Some(3.0)));
    }

    #[test]
    fn positive_innovation_drains_the_statistic() {
        let mut d = FaultDetector::new(FaultDetectorConfig {
            drift: 1.0,
            threshold: 10.0,
            warmup: 0,
        })
        .unwrap();
        d.observe(Some(-5.0)); // s = max(0, 5 - 1) = 4
        assert_eq!(d.score(), 4.0);
        // A strong positive frame pays the deficit back down to zero
        // instead of letting stale evidence linger.
        d.observe(Some(8.0)); // s = max(0, 4 - 8 - 1) = 0
        assert_eq!(d.score(), 0.0);
        assert!(!d.alarmed());
    }

    #[test]
    fn detector_reset_rearms_but_keeps_convergence_credit() {
        let mut d = FaultDetector::new(FaultDetectorConfig {
            drift: 0.0,
            threshold: 3.0,
            warmup: 2,
        })
        .unwrap();
        d.observe(Some(0.0));
        d.observe(Some(0.0));
        assert!(d.observe(Some(-5.0)));
        d.reset();
        assert!(!d.alarmed());
        assert_eq!(d.score(), 0.0);
        // Warm-up already served: the next deficit counts immediately.
        assert!(d.observe(Some(-5.0)));
    }

    #[test]
    fn detector_survives_neg_inf_burst_without_corruption() {
        // Satellite: -inf bursts fed straight into the detector (the
        // tracker normally shields it, but the contract holds anyway).
        let mut d = FaultDetector::new(FaultDetectorConfig {
            drift: 1.0,
            threshold: 10.0,
            warmup: 0,
        })
        .unwrap();
        d.observe(Some(-3.0)); // s = 2
        for _ in 0..5 {
            assert!(!d.observe(Some(f64::NEG_INFINITY)));
            assert!(d.score().is_finite());
        }
        assert_eq!(d.score(), 2.0);
        assert!(!d.observe(Some(f64::NAN)));
        assert_eq!(d.score(), 2.0);
    }
}
