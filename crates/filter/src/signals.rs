//! Streaming uncertainty signals derived from the filter's likelihoods.
//!
//! The particle spread alone cannot distinguish "collapsed and correct"
//! from "collapsed but biased": a confidently wrong cloud is tight, yet
//! its measurement likelihoods sag below their recent trend. This module
//! tracks that trend so the gated pipeline can read a *likelihood
//! innovation* — the per-frame mean log-likelihood minus its running
//! exponentially-weighted average — as a second uncertainty signal next
//! to spread and effective sample size.

use crate::{FilterError, Result};

/// Default EWMA smoothing factor of [`InnovationTracker`]: roughly a
/// five-frame memory, short enough to track scene changes and long
/// enough to ride out single-frame noise.
pub const DEFAULT_INNOVATION_ALPHA: f64 = 0.2;

/// Running innovation of a per-frame scalar (the filter's mean
/// log-likelihood) against its exponentially-weighted moving average.
///
/// Feed one observation per frame with [`InnovationTracker::observe`];
/// it returns `observation - ewma_of_past_frames` and then folds the
/// observation into the average. Negative innovations mean the frame
/// matched the map *worse* than the recent trend — the "collapsed but
/// biased" symptom.
///
/// Warm-up is explicit: the first *finite* observation only primes the
/// average (there is no past trend to deviate from), so the innovation
/// goes live on the second finite frame — until then [`Self::observe`]
/// returns `None` and [`Self::last_innovation`] reads `None`, which is
/// distinct from a genuine zero-innovation reading (`Some(0.0)`).
///
/// Non-finite observations (a frame whose every hypothesis scored
/// `-inf`) are skipped: the history is left untouched — so one blind
/// frame cannot poison the average — and the innovation reads `None`
/// for that frame (no fresh evidence, not "matched the trend exactly").
#[derive(Debug, Clone, PartialEq)]
pub struct InnovationTracker {
    alpha: f64,
    ewma: Option<f64>,
    last: Option<f64>,
}

impl Default for InnovationTracker {
    fn default() -> Self {
        Self {
            alpha: DEFAULT_INNOVATION_ALPHA,
            ewma: None,
            last: None,
        }
    }
}

impl InnovationTracker {
    /// Creates a tracker with smoothing factor `alpha` (the weight of the
    /// newest observation in the average).
    ///
    /// # Errors
    ///
    /// Returns [`FilterError::InvalidArgument`] unless `0 < alpha <= 1`.
    pub fn new(alpha: f64) -> Result<Self> {
        if !(alpha > 0.0) || !(alpha <= 1.0) {
            return Err(FilterError::InvalidArgument(format!(
                "innovation alpha must be in (0, 1], got {alpha}"
            )));
        }
        Ok(Self {
            alpha,
            ewma: None,
            last: None,
        })
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The current running average (`None` before the first finite
    /// observation).
    pub fn history(&self) -> Option<f64> {
        self.ewma
    }

    /// Records one per-frame observation and returns its innovation
    /// against the average of *past* frames. `None` marks warm-up (the
    /// first finite observation, which only primes the average) and
    /// skipped non-finite observations — both cases where "no reading"
    /// must not masquerade as a genuine zero innovation.
    pub fn observe(&mut self, value: f64) -> Option<f64> {
        if !value.is_finite() {
            // Skip the blind frame: history untouched, no fresh reading.
            self.last = None;
            return None;
        }
        let innovation = self.ewma.map(|mean| value - mean);
        self.ewma = Some(match self.ewma {
            Some(mean) => mean + self.alpha * (value - mean),
            None => value,
        });
        self.last = innovation;
        innovation
    }

    /// Innovation of the most recent observation (`None` during warm-up,
    /// before any finite observation has followed the priming one, and
    /// after a skipped non-finite frame) — the value a per-frame
    /// consumer reads *before* the next frame is weighed.
    pub fn last_innovation(&self) -> Option<f64> {
        self.last
    }

    /// Clears the history for a fresh run.
    pub fn reset(&mut self) {
        self.ewma = None;
        self.last = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(InnovationTracker::new(0.0).is_err());
        assert!(InnovationTracker::new(-0.1).is_err());
        assert!(InnovationTracker::new(1.1).is_err());
        assert!(InnovationTracker::new(f64::NAN).is_err());
        assert!(InnovationTracker::new(1.0).is_ok());
        assert!(InnovationTracker::new(0.2).is_ok());
    }

    #[test]
    fn first_observation_is_warm_up_not_zero() {
        let mut t = InnovationTracker::default();
        assert_eq!(t.last_innovation(), None);
        assert_eq!(t.history(), None);
        // The first finite frame primes the average but yields no
        // innovation reading — `None`, explicitly distinct from the
        // genuine zero of a frame that matched the trend exactly.
        assert_eq!(t.observe(-3.0), None);
        assert_eq!(t.history(), Some(-3.0));
        assert_eq!(t.last_innovation(), None);
        // The second finite frame is the first live reading.
        assert_eq!(t.observe(-3.0), Some(0.0));
        assert_eq!(t.last_innovation(), Some(0.0));
    }

    #[test]
    fn innovation_is_delta_against_ewma() {
        let mut t = InnovationTracker::new(0.5).unwrap();
        t.observe(10.0);
        // EWMA = 10; a repeat of the mean is a genuine zero innovation.
        assert_eq!(t.observe(10.0), Some(0.0));
        // EWMA still 10; a drop of 4 reads as -4.
        assert_eq!(t.observe(6.0), Some(-4.0));
        assert_eq!(t.last_innovation(), Some(-4.0));
        // EWMA moved to 8 = 10 + 0.5 * (6 - 10).
        assert_eq!(t.history(), Some(8.0));
        assert_eq!(t.observe(9.0), Some(1.0));
    }

    #[test]
    fn non_finite_observations_skipped() {
        let mut t = InnovationTracker::new(0.5).unwrap();
        t.observe(2.0);
        t.observe(2.0);
        assert_eq!(t.last_innovation(), Some(0.0));
        // A blind frame clears the live reading instead of faking a 0.
        assert_eq!(t.observe(f64::NEG_INFINITY), None);
        assert_eq!(t.last_innovation(), None);
        assert_eq!(t.observe(f64::NAN), None);
        // History untouched by the blind frames.
        assert_eq!(t.history(), Some(2.0));
        assert_eq!(t.observe(3.0), Some(1.0));
    }

    #[test]
    fn all_neg_inf_frames_never_poison_the_average() {
        // Regression: a stretch of frames whose every hypothesis scored
        // -inf (hard-gating sensor, fully out-of-support cloud) must
        // leave the EWMA finite and the tracker ready to resume — the
        // -inf mean log-likelihood must never be folded into the
        // average.
        let mut t = InnovationTracker::default();
        t.observe(-5.0);
        t.observe(-5.0);
        for _ in 0..10 {
            assert_eq!(t.observe(f64::NEG_INFINITY), None);
        }
        assert_eq!(t.history(), Some(-5.0));
        assert!(t.history().unwrap().is_finite());
        // The first frame back on the map reads against the intact
        // history, not against a poisoned -inf average.
        assert_eq!(t.observe(-4.0), Some(1.0));
        // And a tracker that has seen *only* -inf frames is still in
        // warm-up: no history, no reading.
        let mut blind = InnovationTracker::default();
        for _ in 0..5 {
            assert_eq!(blind.observe(f64::NEG_INFINITY), None);
        }
        assert_eq!(blind.history(), None);
        assert_eq!(blind.last_innovation(), None);
    }

    #[test]
    fn alpha_one_tracks_the_last_value() {
        let mut t = InnovationTracker::new(1.0).unwrap();
        t.observe(1.0);
        assert_eq!(t.observe(5.0), Some(4.0));
        // With alpha = 1 the EWMA *is* the previous observation.
        assert_eq!(t.observe(5.0), Some(0.0));
    }

    #[test]
    fn reset_clears_history() {
        let mut t = InnovationTracker::default();
        t.observe(1.0);
        t.observe(2.0);
        t.reset();
        assert_eq!(t.history(), None);
        assert_eq!(t.last_innovation(), None);
        assert_eq!(t.observe(7.0), None);
    }
}
