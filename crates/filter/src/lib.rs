//! Bayesian filtering: the particle filter behind Monte-Carlo
//! localization (paper Section II).
//!
//! The recursive Bayes update of the paper (Eq. 1a/1b) is implemented as a
//! sequential Monte-Carlo filter:
//!
//! - [`particle::ParticleSet`] — weighted hypotheses with normalization,
//!   effective-sample-size tracking and pluggable resampling,
//! - [`filter::ParticleFilter`] — the predict/weight/resample loop over
//!   user-supplied [`filter::Motion`] and [`filter::Measurement`] models,
//! - [`motion::OdometryMotion`] — the noisy odometry motion model for
//!   [`navicim_math::geom::Pose`] states,
//! - [`estimate`] — weighted pose-mean extraction,
//! - [`signals`] — streaming uncertainty signals (the likelihood
//!   [`signals::InnovationTracker`]) that, together with
//!   [`filter::ParticleFilter::spread`] and
//!   [`filter::ParticleFilter::ess_fraction`], feed the gated pipeline's
//!   per-frame uncertainty bus in `navicim-core`.
//!
//! The measurement model is deliberately generic: the digital GMM baseline
//! and the analog HMGM-CIM engine both plug in through
//! [`filter::Measurement`], which is how the paper's co-design comparison
//! (Fig. 2(e–h)) is staged in `navicim-core`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod estimate;
pub mod filter;
pub mod motion;
pub mod particle;
pub mod signals;

use std::error::Error;
use std::fmt;

/// Error type for filter construction and updates.
#[derive(Debug, Clone, PartialEq)]
pub enum FilterError {
    /// An argument was outside its valid domain.
    InvalidArgument(String),
    /// All particle weights collapsed to zero (filter divergence).
    Degenerate,
}

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            FilterError::Degenerate => write!(f, "all particle weights collapsed to zero"),
        }
    }
}

impl Error for FilterError {}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, FilterError>;
