//! Point estimates and spread measures over pose particle sets.

use crate::particle::ParticleSet;
use navicim_math::geom::{Pose, Quat, Vec3};

/// Weighted mean pose of a particle set.
///
/// The translation is the weighted arithmetic mean. The rotation is the
/// weighted chordal mean: quaternions are sign-aligned to the
/// highest-weight particle, averaged componentwise and renormalized — the
/// standard first-order approximation valid when particles agree to within
/// a hemisphere.
pub fn mean_pose(particles: &ParticleSet<Pose>) -> Pose {
    let translation = Vec3::new(
        particles.weighted_mean(|p| p.translation.x),
        particles.weighted_mean(|p| p.translation.y),
        particles.weighted_mean(|p| p.translation.z),
    );
    let (_, reference) = particles.map_estimate();
    let ref_q = reference.rotation;
    let mut acc = [0.0f64; 4];
    for (pose, &w) in particles.states().iter().zip(particles.weights()) {
        let mut q = pose.rotation.normalized();
        let dot = q.w * ref_q.w + q.x * ref_q.x + q.y * ref_q.y + q.z * ref_q.z;
        if dot < 0.0 {
            q = Quat::new(-q.w, -q.x, -q.y, -q.z);
        }
        acc[0] += w * q.w;
        acc[1] += w * q.x;
        acc[2] += w * q.y;
        acc[3] += w * q.z;
    }
    let rotation = Quat::new(acc[0], acc[1], acc[2], acc[3]);
    let rotation = if rotation.norm() < 1e-12 {
        ref_q
    } else {
        rotation.normalized()
    };
    Pose::new(rotation, translation)
}

/// Weighted positional spread: the root of the summed per-axis weighted
/// variances (a scalar "1σ radius" of the particle cloud).
pub fn position_spread(particles: &ParticleSet<Pose>) -> f64 {
    particles
        .weighted_covariance_trace(|p| p.translation.to_array())
        .sqrt()
}

/// Variance floor for [`position_nees`], in m²: axes the cloud has
/// collapsed below this (σ < 1 µm) are treated as claiming that
/// certainty, so any realized error there reads as inconsistency.
pub const NEES_VAR_FLOOR: f64 = 1e-12;

/// Diagonal NEES (normalized estimation error squared) of the cloud's
/// positional belief against the true position: per axis, squared
/// mean-estimate error over the weighted particle variance, summed.
///
/// A consistent filter holds this near the position dimension (3);
/// values far above it mean the filter is *overconfident* — its
/// covariance no longer explains its realized error — which is the
/// per-frame trust metric faults and attacks show up in even while the
/// raw error still looks plausible. Collapsed axes price their variance
/// at [`NEES_VAR_FLOOR`], so the result is finite for every cloud.
pub fn position_nees(particles: &ParticleSet<Pose>, truth: Pose) -> f64 {
    let (mean, var) = particles.weighted_moments(|p| p.translation.to_array());
    let t = truth.translation.to_array();
    let mut nees = 0.0;
    for axis in 0..3 {
        let e = mean[axis] - t[axis];
        nees += e * e / var[axis].max(NEES_VAR_FLOOR);
    }
    nees
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_math::rng::{Pcg32, SampleExt};

    fn cloud(center: Vec3, yaw: f64, spread: f64, n: usize, seed: u64) -> ParticleSet<Pose> {
        let mut rng = Pcg32::seed_from_u64(seed);
        let states: Vec<Pose> = (0..n)
            .map(|_| {
                Pose::from_position_euler(
                    center
                        + Vec3::new(
                            rng.sample_normal(0.0, spread),
                            rng.sample_normal(0.0, spread),
                            rng.sample_normal(0.0, spread),
                        ),
                    0.0,
                    0.0,
                    yaw + rng.sample_normal(0.0, 0.05),
                )
            })
            .collect();
        ParticleSet::from_states(states).unwrap()
    }

    #[test]
    fn mean_pose_recovers_cloud_center() {
        let center = Vec3::new(1.0, -2.0, 0.5);
        let set = cloud(center, 0.8, 0.1, 2000, 1);
        let est = mean_pose(&set);
        assert!(est.translation.distance(center) < 0.01);
        let (_, _, yaw) = est.rotation.to_euler();
        assert!((yaw - 0.8).abs() < 0.01);
    }

    #[test]
    fn mean_pose_handles_quaternion_double_cover() {
        // Two identical orientations with opposite quaternion signs must
        // average to the same orientation, not cancel out.
        let q = Quat::from_euler(0.0, 0.0, 1.0);
        let neg_q = Quat::new(-q.w, -q.x, -q.y, -q.z);
        let set =
            ParticleSet::from_states(vec![Pose::new(q, Vec3::ZERO), Pose::new(neg_q, Vec3::ZERO)])
                .unwrap();
        let est = mean_pose(&set);
        assert!(est.rotation.angle_to(q) < 1e-9);
    }

    #[test]
    fn spread_tracks_cloud_size() {
        let tight = cloud(Vec3::ZERO, 0.0, 0.05, 1000, 2);
        let wide = cloud(Vec3::ZERO, 0.0, 0.5, 1000, 3);
        let s_tight = position_spread(&tight);
        let s_wide = position_spread(&wide);
        assert!(s_wide > 5.0 * s_tight);
        // For isotropic σ per axis, spread ≈ σ√3.
        assert!((s_tight / (0.05 * 3f64.sqrt()) - 1.0).abs() < 0.1);
    }

    #[test]
    fn nees_is_small_when_truth_sits_inside_the_cloud() {
        let center = Vec3::new(1.0, -2.0, 0.5);
        let set = cloud(center, 0.0, 0.1, 2000, 4);
        // Truth at the cloud center: NEES well under the dimension.
        assert!(position_nees(&set, Pose::from_position_euler(center, 0.0, 0.0, 0.0)) < 3.0);
        // Truth one σ off per axis: NEES near 3.
        let off = center + Vec3::new(0.1, 0.1, 0.1);
        let nees = position_nees(&set, Pose::from_position_euler(off, 0.0, 0.0, 0.0));
        assert!(nees > 1.0 && nees < 6.0, "nees = {nees}");
    }

    #[test]
    fn nees_explodes_for_an_overconfident_cloud() {
        let center = Vec3::new(1.0, -2.0, 0.5);
        let tight = cloud(center, 0.0, 0.01, 500, 5);
        let truth = Pose::from_position_euler(center + Vec3::new(0.5, 0.0, 0.0), 0.0, 0.0, 0.0);
        // 50σ of realized error against a 1 cm cloud: wildly inconsistent.
        assert!(position_nees(&tight, truth) > 1e3);
    }

    #[test]
    fn nees_is_finite_for_a_collapsed_cloud() {
        let pose = Pose::from_position_euler(Vec3::new(3.0, 1.0, 2.0), 0.0, 0.0, 0.0);
        let set = ParticleSet::from_states(vec![pose]).unwrap();
        // Zero error on a zero-variance cloud: exactly consistent.
        assert_eq!(position_nees(&set, pose), 0.0);
        // Any error on a zero-variance cloud: huge but finite (floored).
        let off = Pose::from_position_euler(Vec3::new(3.1, 1.0, 2.0), 0.0, 0.0, 0.0);
        let nees = position_nees(&set, off);
        assert!(nees.is_finite() && nees > 1e6);
    }

    #[test]
    fn single_particle_is_its_own_mean() {
        let pose = Pose::from_position_euler(Vec3::new(3.0, 1.0, 2.0), 0.1, 0.2, 0.3);
        let set = ParticleSet::from_states(vec![pose]).unwrap();
        let est = mean_pose(&set);
        assert!(est.translation_distance(pose) < 1e-12);
        assert!(est.rotation_distance(pose) < 1e-9);
        assert_eq!(position_spread(&set), 0.0);
    }
}
