//! Point estimates and spread measures over pose particle sets.

use crate::particle::ParticleSet;
use navicim_math::geom::{Pose, Quat, Vec3};

/// Weighted mean pose of a particle set.
///
/// The translation is the weighted arithmetic mean. The rotation is the
/// weighted chordal mean: quaternions are sign-aligned to the
/// highest-weight particle, averaged componentwise and renormalized — the
/// standard first-order approximation valid when particles agree to within
/// a hemisphere.
pub fn mean_pose(particles: &ParticleSet<Pose>) -> Pose {
    let translation = Vec3::new(
        particles.weighted_mean(|p| p.translation.x),
        particles.weighted_mean(|p| p.translation.y),
        particles.weighted_mean(|p| p.translation.z),
    );
    let (_, reference) = particles.map_estimate();
    let ref_q = reference.rotation;
    let mut acc = [0.0f64; 4];
    for (pose, &w) in particles.states().iter().zip(particles.weights()) {
        let mut q = pose.rotation.normalized();
        let dot = q.w * ref_q.w + q.x * ref_q.x + q.y * ref_q.y + q.z * ref_q.z;
        if dot < 0.0 {
            q = Quat::new(-q.w, -q.x, -q.y, -q.z);
        }
        acc[0] += w * q.w;
        acc[1] += w * q.x;
        acc[2] += w * q.y;
        acc[3] += w * q.z;
    }
    let rotation = Quat::new(acc[0], acc[1], acc[2], acc[3]);
    let rotation = if rotation.norm() < 1e-12 {
        ref_q
    } else {
        rotation.normalized()
    };
    Pose::new(rotation, translation)
}

/// Weighted positional spread: the root of the summed per-axis weighted
/// variances (a scalar "1σ radius" of the particle cloud).
pub fn position_spread(particles: &ParticleSet<Pose>) -> f64 {
    particles
        .weighted_covariance_trace(|p| p.translation.to_array())
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_math::rng::{Pcg32, SampleExt};

    fn cloud(center: Vec3, yaw: f64, spread: f64, n: usize, seed: u64) -> ParticleSet<Pose> {
        let mut rng = Pcg32::seed_from_u64(seed);
        let states: Vec<Pose> = (0..n)
            .map(|_| {
                Pose::from_position_euler(
                    center
                        + Vec3::new(
                            rng.sample_normal(0.0, spread),
                            rng.sample_normal(0.0, spread),
                            rng.sample_normal(0.0, spread),
                        ),
                    0.0,
                    0.0,
                    yaw + rng.sample_normal(0.0, 0.05),
                )
            })
            .collect();
        ParticleSet::from_states(states).unwrap()
    }

    #[test]
    fn mean_pose_recovers_cloud_center() {
        let center = Vec3::new(1.0, -2.0, 0.5);
        let set = cloud(center, 0.8, 0.1, 2000, 1);
        let est = mean_pose(&set);
        assert!(est.translation.distance(center) < 0.01);
        let (_, _, yaw) = est.rotation.to_euler();
        assert!((yaw - 0.8).abs() < 0.01);
    }

    #[test]
    fn mean_pose_handles_quaternion_double_cover() {
        // Two identical orientations with opposite quaternion signs must
        // average to the same orientation, not cancel out.
        let q = Quat::from_euler(0.0, 0.0, 1.0);
        let neg_q = Quat::new(-q.w, -q.x, -q.y, -q.z);
        let set =
            ParticleSet::from_states(vec![Pose::new(q, Vec3::ZERO), Pose::new(neg_q, Vec3::ZERO)])
                .unwrap();
        let est = mean_pose(&set);
        assert!(est.rotation.angle_to(q) < 1e-9);
    }

    #[test]
    fn spread_tracks_cloud_size() {
        let tight = cloud(Vec3::ZERO, 0.0, 0.05, 1000, 2);
        let wide = cloud(Vec3::ZERO, 0.0, 0.5, 1000, 3);
        let s_tight = position_spread(&tight);
        let s_wide = position_spread(&wide);
        assert!(s_wide > 5.0 * s_tight);
        // For isotropic σ per axis, spread ≈ σ√3.
        assert!((s_tight / (0.05 * 3f64.sqrt()) - 1.0).abs() < 0.1);
    }

    #[test]
    fn single_particle_is_its_own_mean() {
        let pose = Pose::from_position_euler(Vec3::new(3.0, 1.0, 2.0), 0.1, 0.2, 0.3);
        let set = ParticleSet::from_states(vec![pose]).unwrap();
        let est = mean_pose(&set);
        assert!(est.translation_distance(pose) < 1e-12);
        assert!(est.rotation_distance(pose) < 1e-9);
        assert_eq!(position_spread(&set), 0.0);
    }
}
