//! Noisy odometry motion model for pose particles.

use crate::filter::Motion;
use navicim_math::geom::{Pose, Quat, Vec3};
use navicim_math::rng::{Rng64, SampleExt};

/// Odometry-driven motion with additive Gaussian noise.
///
/// The control input is the *commanded/measured* relative pose between two
/// time steps (as delivered by an IMU/odometry pipeline); each particle
/// composes that delta perturbed by translation noise (a fixed floor plus a
/// magnitude-proportional term) and rotation noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OdometryMotion {
    /// Translation noise floor per step, in metres.
    pub trans_floor: f64,
    /// Translation noise proportional to the step length (unitless).
    pub trans_scale: f64,
    /// Rotation noise per step, in radians (about random axes).
    pub rot_sigma: f64,
}

impl OdometryMotion {
    /// A model suited to short indoor steps (mm-level floor, 5% scale).
    pub fn indoor() -> Self {
        Self {
            trans_floor: 0.005,
            trans_scale: 0.05,
            rot_sigma: 0.01,
        }
    }

    /// A noiseless model (for ablations and unit tests).
    pub fn exact() -> Self {
        Self {
            trans_floor: 0.0,
            trans_scale: 0.0,
            rot_sigma: 0.0,
        }
    }
}

impl Default for OdometryMotion {
    fn default() -> Self {
        Self::indoor()
    }
}

impl Motion<Pose, Pose> for OdometryMotion {
    fn sample(&self, state: &Pose, control: &Pose, rng: &mut dyn Rng64) -> Pose {
        self.sample_scaled(state, control, 1.0, rng)
    }

    /// Both noise standard deviations (translation and rotation) are
    /// multiplied by `noise_scale`, so the sampled pose covariance
    /// inflates by `noise_scale²`. The RNG draw sequence is independent
    /// of the scale (the rotation branch keys on the *unscaled*
    /// `rot_sigma`), so scaled and unscaled runs stay stream-aligned and
    /// `noise_scale == 1.0` is bit-identical to [`Motion::sample`].
    fn sample_scaled(
        &self,
        state: &Pose,
        control: &Pose,
        noise_scale: f64,
        rng: &mut dyn Rng64,
    ) -> Pose {
        let step_len = control.translation.norm();
        let sigma_t = (self.trans_floor + self.trans_scale * step_len) * noise_scale;
        let noisy_translation = control.translation
            + Vec3::new(
                rng.sample_normal(0.0, sigma_t),
                rng.sample_normal(0.0, sigma_t),
                rng.sample_normal(0.0, sigma_t),
            );
        let noisy_rotation = if self.rot_sigma > 0.0 {
            let axis = Vec3::new(
                rng.sample_standard_normal(),
                rng.sample_standard_normal(),
                rng.sample_standard_normal(),
            );
            let axis = if axis.norm() < 1e-12 { Vec3::Z } else { axis };
            control
                .rotation
                .mul_quat(Quat::from_axis_angle(
                    axis,
                    rng.sample_normal(0.0, self.rot_sigma * noise_scale),
                ))
                .normalized()
        } else {
            control.rotation
        };
        state.compose(Pose::new(noisy_rotation, noisy_translation))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_math::rng::Pcg32;
    use navicim_math::stats;

    #[test]
    fn exact_model_composes_exactly() {
        let m = OdometryMotion::exact();
        let mut rng = Pcg32::seed_from_u64(1);
        let start = Pose::from_position_euler(Vec3::new(1.0, 0.0, 0.0), 0.0, 0.0, 0.3);
        let delta = Pose::from_position_euler(Vec3::new(0.1, 0.0, 0.0), 0.0, 0.0, 0.1);
        let next = m.sample(&start, &delta, &mut rng);
        let expect = start.compose(delta);
        assert!(next.translation_distance(expect) < 1e-12);
        assert!(next.rotation_distance(expect) < 1e-9);
    }

    #[test]
    fn noise_statistics_match_model() {
        let m = OdometryMotion {
            trans_floor: 0.01,
            trans_scale: 0.1,
            rot_sigma: 0.0,
        };
        let mut rng = Pcg32::seed_from_u64(2);
        let start = Pose::IDENTITY;
        let delta = Pose::from_position_euler(Vec3::new(1.0, 0.0, 0.0), 0.0, 0.0, 0.0);
        let xs: Vec<f64> = (0..20_000)
            .map(|_| m.sample(&start, &delta, &mut rng).translation.x - 1.0)
            .collect();
        // σ = floor + scale·|step| = 0.11.
        let sd = stats::std_dev(&xs);
        assert!((sd - 0.11).abs() < 0.005, "sd {sd}");
        assert!(stats::mean(&xs).abs() < 0.005);
    }

    #[test]
    fn rotation_noise_perturbs_orientation() {
        let m = OdometryMotion {
            trans_floor: 0.0,
            trans_scale: 0.0,
            rot_sigma: 0.05,
        };
        let mut rng = Pcg32::seed_from_u64(3);
        let start = Pose::IDENTITY;
        let delta = Pose::IDENTITY;
        let angles: Vec<f64> = (0..5000)
            .map(|_| {
                m.sample(&start, &delta, &mut rng)
                    .rotation_distance(Pose::IDENTITY)
            })
            .collect();
        // Mean absolute rotation angle ≈ σ·√(2/π) for half-normal.
        let mean_angle = stats::mean(&angles);
        let expect = 0.05 * (2.0 / std::f64::consts::PI).sqrt();
        assert!((mean_angle / expect - 1.0).abs() < 0.1, "mean {mean_angle}");
    }

    #[test]
    fn scaled_sampling_is_bit_identical_at_unit_scale() {
        let m = OdometryMotion::indoor();
        let start = Pose::from_position_euler(Vec3::new(0.4, -0.2, 1.0), 0.0, 0.1, 0.7);
        let delta = Pose::from_position_euler(Vec3::new(0.1, 0.02, -0.01), 0.01, 0.0, 0.05);
        for seed in 0..16 {
            let mut a = Pcg32::seed_from_u64(seed);
            let mut b = Pcg32::seed_from_u64(seed);
            let plain = m.sample(&start, &delta, &mut a);
            let scaled = m.sample_scaled(&start, &delta, 1.0, &mut b);
            assert_eq!(plain, scaled);
            assert_eq!(a, b, "RNG streams stay aligned");
        }
    }

    #[test]
    fn noise_scale_inflates_the_sampled_spread() {
        let m = OdometryMotion {
            trans_floor: 0.01,
            trans_scale: 0.1,
            rot_sigma: 0.0,
        };
        let mut rng = Pcg32::seed_from_u64(21);
        let delta = Pose::from_position_euler(Vec3::new(1.0, 0.0, 0.0), 0.0, 0.0, 0.0);
        let sd_at = |scale: f64, rng: &mut Pcg32| {
            let xs: Vec<f64> = (0..20_000)
                .map(|_| {
                    m.sample_scaled(&Pose::IDENTITY, &delta, scale, rng)
                        .translation
                        .x
                        - 1.0
                })
                .collect();
            stats::std_dev(&xs)
        };
        // σ = (floor + scale·|step|) · noise_scale = 0.11 · 3 = 0.33.
        let sd = sd_at(3.0, &mut rng);
        assert!((sd - 0.33).abs() < 0.015, "sd {sd}");
        // A zero scale degenerates to exact composition.
        let exact = m.sample_scaled(&Pose::IDENTITY, &delta, 0.0, &mut rng);
        assert!(exact.translation_distance(Pose::IDENTITY.compose(delta)) < 1e-12);
    }

    #[test]
    fn zero_step_only_floor_noise() {
        let m = OdometryMotion {
            trans_floor: 0.02,
            trans_scale: 0.5,
            rot_sigma: 0.0,
        };
        let mut rng = Pcg32::seed_from_u64(4);
        let xs: Vec<f64> = (0..10_000)
            .map(|_| {
                m.sample(&Pose::IDENTITY, &Pose::IDENTITY, &mut rng)
                    .translation
                    .x
            })
            .collect();
        let sd = stats::std_dev(&xs);
        assert!((sd - 0.02).abs() < 0.002, "sd {sd}");
    }
}
