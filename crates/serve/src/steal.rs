//! A minimal work-stealing task executor built on `std::thread::scope` —
//! no external dependencies, no unsafe code.
//!
//! Tasks are distributed round-robin across per-worker deques; an idle
//! worker scans its peers and steals the back half of the first
//! non-empty queue it finds. Fleet rounds never spawn tasks from inside
//! tasks, so a worker may exit as soon as one full scan finds every
//! queue empty: at that instant every remaining task is owned by a
//! worker that is executing it (and will drain its own queue before
//! exiting), never stranded.
//!
//! Determinism contract: the executor affects only *scheduling*. Each
//! task owns its state and results are re-sorted by task index, so
//! outputs are identical for any worker count or interleaving — the
//! property the serve-level tests pin down.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Runs `tasks` across `workers` threads, returning the results in task
/// order. `f` receives the task's original index and the task value.
///
/// With one worker (or zero, clamped to one) or at most one task, the
/// tasks run inline on the caller's thread in index order — the
/// sequential reference scheduling.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
pub fn run_tasks<T, R, F>(workers: usize, tasks: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = tasks.len();
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 {
        return tasks
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let queues: Vec<Mutex<VecDeque<(usize, T)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, t) in tasks.into_iter().enumerate() {
        queues[i % workers]
            .lock()
            .expect("worker queue poisoned")
            .push_back((i, t));
    }
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for w in 0..workers {
            let queues = &queues;
            let results = &results;
            let f = &f;
            scope.spawn(move || {
                let mut done: Vec<(usize, R)> = Vec::new();
                loop {
                    // Bind the pop so its MutexGuard drops before the
                    // steal path runs — chaining `.or_else` directly
                    // would hold the own-queue lock while locking a
                    // victim, deadlocking against a mirrored steal.
                    let own = queues[w].lock().expect("worker queue poisoned").pop_front();
                    let task = own.or_else(|| steal_into(queues, w));
                    match task {
                        Some((i, t)) => done.push((i, f(i, t))),
                        None => break,
                    }
                }
                results
                    .lock()
                    .expect("result sink poisoned")
                    .append(&mut done);
            });
        }
    });
    let mut collected = results.into_inner().expect("result sink poisoned");
    debug_assert_eq!(collected.len(), n, "executor lost tasks");
    collected.sort_unstable_by_key(|(i, _)| *i);
    collected.into_iter().map(|(_, r)| r).collect()
}

/// Scans the other workers' queues round-robin from `me + 1` and steals
/// the back half of the first non-empty one: one task is returned to run
/// immediately, the rest land in `me`'s queue. Victim and own locks are
/// never held together, so lock order cannot deadlock.
fn steal_into<T>(queues: &[Mutex<VecDeque<(usize, T)>>], me: usize) -> Option<(usize, T)> {
    let w = queues.len();
    for off in 1..w {
        let victim = (me + off) % w;
        let mut grabbed = {
            let mut q = queues[victim].lock().expect("worker queue poisoned");
            let len = q.len();
            if len == 0 {
                continue;
            }
            q.split_off(len - len.div_ceil(2))
        };
        let first = grabbed.pop_front();
        if !grabbed.is_empty() {
            queues[me]
                .lock()
                .expect("worker queue poisoned")
                .append(&mut grabbed);
        }
        return first;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_task_exactly_once_in_order() {
        for workers in [1, 2, 4, 7] {
            let tasks: Vec<usize> = (0..53).collect();
            let counter = AtomicUsize::new(0);
            let out = run_tasks(workers, tasks, |i, t| {
                counter.fetch_add(1, Ordering::Relaxed);
                assert_eq!(i, t);
                t * 3
            });
            assert_eq!(counter.load(Ordering::Relaxed), 53, "workers={workers}");
            assert_eq!(out, (0..53).map(|t| t * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn handles_empty_and_single_task_sets() {
        let empty: Vec<usize> = Vec::new();
        assert!(run_tasks(4, empty, |_, t: usize| t).is_empty());
        assert_eq!(run_tasks(4, vec![9usize], |i, t| (i, t)), vec![(0, 9)]);
    }

    #[test]
    fn more_workers_than_tasks_is_fine() {
        let out = run_tasks(16, (0..3).collect::<Vec<usize>>(), |_, t| t + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }
}
