//! # navicim-serve — fleet-scale localization serving
//!
//! Runs hundreds-to-thousands of concurrent
//! [`LocalizationPipeline`](navicim_core::pipeline::LocalizationPipeline)
//! sessions over one shared pool of fitted map backends:
//!
//! - [`fleet`] — the [`Fleet`](fleet::Fleet): per-agent sessions forked
//!   off one prototype (shared read-only maps / CIM fabric behind `Arc`),
//!   bulk-synchronous frame rounds, and the cross-agent batcher that
//!   coalesces every session's per-frame likelihood evaluation into a
//!   single large `PointBatch` call per backend slot,
//! - [`steal`] — the in-repo work-stealing executor (std threads, no
//!   external dependencies, no unsafe) that schedules the per-session
//!   phases of each round.
//!
//! The headline property, enforced by audit
//! (`navicim_device::noise::StreamAudit`) and property tests: every
//! session's outputs are **bit-identical** to running that session alone,
//! for any worker count, any task interleaving, coalescing on or off —
//! because analog evaluation noise is a pure function of (stream seed,
//! stream index) and digital evaluation is deterministic, batching
//! across agents changes *where* likelihoods are computed, never their
//! values.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fleet;
pub mod steal;

pub use fleet::{Fleet, FleetConfig, ServeError, TaskOrder};
