//! The fleet: many localization sessions over shared map backends, with
//! optional cross-agent likelihood batching.
//!
//! # Round structure
//!
//! [`Fleet::step_round`] advances every session one frame in a
//! bulk-synchronous round:
//!
//! 1. **Phase A** (work-stealing parallel): each session runs
//!    [`LocalizationPipeline::begin_frame`] — gate, VO, motion
//!    prediction — and stages its frame-wide scan batch without
//!    evaluating it.
//! 2. **Coalesce** (coordinator): the staged batches are concatenated in
//!    session-index order into one mega-batch per backend slot. Each
//!    analog session contributes a [`NoiseSegment`] carrying its own
//!    counter-based noise stream, and its claim on that stream is
//!    audited for contiguity ([`StreamAudit`]). Each slot's mega-batch
//!    is evaluated once through a fleet-owned evaluator backend
//!    ([`MapBackend::serve_segments`]), amortizing per-call overheads
//!    (and, with the `parallel` feature, crossing the chunking threshold
//!    small per-session batches never reach).
//! 3. **Phase B** (work-stealing parallel): each session commits its
//!    slice ([`MapBackend::absorb_served`]) and completes the frame
//!    ([`LocalizationPipeline::finish_frame`]).
//!
//! With coalescing off, each session runs its monolithic
//! [`LocalizationPipeline::step`] instead — the N-independent-pipelines
//! baseline.
//!
//! # Determinism contract
//!
//! Per-session outputs are **bit-identical** across all of: coalescing
//! on/off, any worker count, and any task ordering. The chain: sessions
//! fork with per-session RNG/filter/VO/noise state
//! ([`LocalizationPipeline::fork_session`]); the analog noise value for
//! a point is a pure function of (stream seed, stream index) via
//! `NoiseStream::at`, so a session's slice of a mega-batch draws exactly
//! the values its solo evaluation would; digital evaluations are pure,
//! so any batch split is bit-identical by the `LikelihoodBackend`
//! contract; and [`MapBackend::absorb_served`] replays exactly the
//! bookkeeping a solo evaluation performs.

use crate::steal::run_tasks;
use navicim_analog::engine::NoiseSegment;
use navicim_backend::PointBatch;
use navicim_core::pipeline::{FrameReport, LocalizationPipeline, PendingFrame};
use navicim_core::registry::MapBackend;
use navicim_core::CoreError;
use navicim_device::noise::{StreamAudit, StreamAuditError};
use navicim_math::geom::Pose;
use navicim_math::rng::{Pcg32, Rng64};
use navicim_scene::camera::DepthImage;
use navicim_scene::dataset::LocalizationDataset;
use std::fmt;
use std::time::Instant;

/// A serving-layer failure.
#[derive(Debug)]
pub enum ServeError {
    /// A session's pipeline step failed.
    Core(CoreError),
    /// A session's noise-stream claim failed the contiguity audit — the
    /// bit-identity guarantee would be void, so the round aborts.
    Audit {
        /// Session whose claim failed.
        session: usize,
        /// Backend slot the claim was for.
        slot: usize,
        /// The audit failure.
        source: StreamAuditError,
    },
    /// The fleet configuration cannot be served (e.g. coalescing over a
    /// backend without serving support).
    Unsupported(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Core(e) => write!(f, "session step failed: {e}"),
            Self::Audit {
                session,
                slot,
                source,
            } => write!(
                f,
                "noise audit failed for session {session} slot {slot}: {source}"
            ),
            Self::Unsupported(msg) => write!(f, "unsupported fleet configuration: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Core(e) => Some(e),
            Self::Audit { source, .. } => Some(source),
            Self::Unsupported(_) => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        Self::Core(e)
    }
}

/// Serving-layer result.
pub type Result<T> = std::result::Result<T, ServeError>;

/// The order sessions are fed to the work-stealing executor — outputs
/// are bit-identical for every variant (property-tested); the knob
/// exists to drive interleaving robustness tests and scheduling
/// experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TaskOrder {
    /// Session-index order.
    #[default]
    Forward,
    /// Reverse session-index order.
    Reverse,
    /// A deterministic Fisher–Yates shuffle of the given seed.
    Shuffled(u64),
}

impl TaskOrder {
    /// The session visitation order for `n` sessions.
    fn permutation(self, n: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..n).collect();
        match self {
            Self::Forward => {}
            Self::Reverse => order.reverse(),
            Self::Shuffled(seed) => {
                let mut rng = Pcg32::seed_from_u64(seed);
                for i in (1..n).rev() {
                    let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                    order.swap(i, j);
                }
            }
        }
        order
    }
}

/// Fleet serving configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Worker threads for the per-session phases (clamped to ≥ 1).
    pub workers: usize,
    /// Coalesce per-session likelihood batches into one evaluation per
    /// backend slot per round. Off = the N-independent-pipelines
    /// baseline (each session runs its monolithic step).
    pub coalesce: bool,
    /// Order sessions are fed to the executor.
    pub order: TaskOrder,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            coalesce: true,
            order: TaskOrder::Forward,
        }
    }
}

/// One round's inputs: either a single `(control, depth, truth)` triple
/// broadcast to every session, or one triple per agent (fault-injection
/// sweeps, heterogeneous fleets). Internal — the round paths below are
/// written against `get(idx)` and never know which shape they serve.
enum RoundInputs<'a> {
    Shared {
        control: &'a Pose,
        depth: &'a DepthImage,
        truth: Pose,
    },
    PerAgent {
        controls: &'a [Pose],
        depths: &'a [DepthImage],
        truths: &'a [Pose],
    },
}

impl RoundInputs<'_> {
    fn get(&self, idx: usize) -> (&Pose, &DepthImage, Pose) {
        match self {
            Self::Shared {
                control,
                depth,
                truth,
            } => (control, depth, *truth),
            Self::PerAgent {
                controls,
                depths,
                truths,
            } => (&controls[idx], &depths[idx], truths[idx]),
        }
    }
}

/// Per-slot round scratch: the coalesced batch, its noise segments and
/// the evaluation outputs, reused across rounds so the steady state
/// allocates nothing.
#[derive(Debug)]
struct SlotScratch {
    batch: PointBatch,
    segments: Vec<NoiseSegment>,
    /// Session index behind each entry of `segments`, for routing the
    /// per-segment column-activation counts back to their owners.
    seg_sessions: Vec<usize>,
    /// Column activations per segment, from the counted serve.
    seg_acts: Vec<u64>,
    lls: Vec<f64>,
    currents: Vec<f64>,
}

impl Default for SlotScratch {
    fn default() -> Self {
        Self {
            batch: PointBatch::new(3),
            segments: Vec::new(),
            seg_sessions: Vec::new(),
            seg_acts: Vec::new(),
            lls: Vec::new(),
            currents: Vec::new(),
        }
    }
}

/// Hundreds-to-thousands of concurrent localization sessions over one
/// shared set of fitted map backends.
///
/// Built by forking a pristine prototype pipeline once per agent
/// (sharing the read-only fitted maps / CIM fabric) plus one fleet-owned
/// *evaluator* fork per backend slot, used only to execute coalesced
/// batches — its own state is never committed; sessions commit their own
/// slices.
pub struct Fleet {
    sessions: Vec<LocalizationPipeline>,
    evaluators: Vec<Box<dyn MapBackend>>,
    /// `[session][slot]` noise-stream auditors (`None` for digital
    /// slots, which consume no stream).
    audits: Vec<Vec<Option<StreamAudit>>>,
    slots: Vec<SlotScratch>,
    /// `(start, count)` of each session's slice within its slot batch,
    /// reused across rounds (clear-don't-drop).
    spans: Vec<(usize, usize)>,
    /// Per-session column activations of the last coalesced round.
    session_acts: Vec<u64>,
    config: FleetConfig,
    /// Per-agent latency of the last round, nanoseconds from round start
    /// to that agent's frame completion.
    last_latencies_ns: Vec<u64>,
    /// Cached session visitation order — a pure function of the
    /// immutable `config.order`, computed once instead of per round.
    order: Vec<usize>,
    /// Reused per-round pending-frame staging of the sequential
    /// coalesced path, indexed by session.
    pendings: Vec<Option<PendingFrame>>,
    /// Reused per-round result staging, indexed by session.
    results: Vec<Option<navicim_core::Result<FrameReport>>>,
    /// Reused session-order report buffer the round entry points hand
    /// out.
    reports: Vec<FrameReport>,
}

impl fmt::Debug for Fleet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fleet")
            .field("agents", &self.sessions.len())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Fleet {
    /// Forks `agents` sessions off `prototype` (which must be pristine —
    /// see [`LocalizationPipeline::fork_session`]) with seeds
    /// `seed_base + i`, plus one evaluator fork per backend slot.
    ///
    /// # Errors
    ///
    /// Propagates fork failures; rejects `agents == 0` and, when
    /// coalescing is on, backends without coalesced-serving support.
    pub fn new(
        prototype: &LocalizationPipeline,
        agents: usize,
        seed_base: u64,
        config: FleetConfig,
    ) -> Result<Self> {
        if agents == 0 {
            return Err(ServeError::Unsupported(
                "fleet requires at least one agent".into(),
            ));
        }
        if config.coalesce {
            for slot in 0..prototype.num_backends() {
                if !prototype.backend(slot).supports_coalesced_serving() {
                    return Err(ServeError::Unsupported(format!(
                        "backend '{}' (slot {slot}) does not support coalesced serving",
                        prototype.backend_names()[slot]
                    )));
                }
            }
        }
        let mut sessions = Vec::with_capacity(agents);
        for i in 0..agents {
            sessions.push(prototype.fork_session(seed_base.wrapping_add(i as u64))?);
        }
        let mut evaluators = Vec::with_capacity(prototype.num_backends());
        for slot in 0..prototype.num_backends() {
            evaluators.push(prototype.backend(slot).fork_session().ok_or_else(|| {
                ServeError::Unsupported(format!(
                    "backend '{}' (slot {slot}) does not support session forking",
                    prototype.backend_names()[slot]
                ))
            })?);
        }
        let audits = sessions
            .iter()
            .map(|s| {
                (0..s.num_backends())
                    .map(|slot| {
                        s.backend(slot)
                            .noise_stream()
                            .map(|ns| StreamAudit::begin(&ns))
                    })
                    .collect()
            })
            .collect();
        let slots = (0..prototype.num_backends())
            .map(|_| SlotScratch::default())
            .collect();
        Ok(Self {
            sessions,
            evaluators,
            audits,
            slots,
            spans: Vec::with_capacity(agents),
            session_acts: vec![0; agents],
            config,
            last_latencies_ns: vec![0; agents],
            order: config.order.permutation(agents),
            pendings: Vec::with_capacity(agents),
            results: Vec::with_capacity(agents),
            reports: Vec::with_capacity(agents),
        })
    }

    /// Number of agents.
    pub fn num_agents(&self) -> usize {
        self.sessions.len()
    }

    /// The serving configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The session serving agent `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn session(&self, i: usize) -> &LocalizationPipeline {
        &self.sessions[i]
    }

    /// Per-agent latency of the last round, in nanoseconds from round
    /// start to that agent's frame completion (in coalesced rounds every
    /// agent completes at the round barrier).
    pub fn last_latencies_ns(&self) -> &[u64] {
        &self.last_latencies_ns
    }

    /// Advances every session one frame on a shared `(control, depth,
    /// truth)` broadcast, returning the frame reports in session order.
    /// The returned slice borrows a fleet-owned buffer reused across
    /// rounds (clone what must outlive the next round).
    ///
    /// # Errors
    ///
    /// Propagates the first session failure and audit violations. The
    /// fleet should be discarded after an error — sessions may have
    /// diverged mid-round.
    pub fn step_round(
        &mut self,
        control: &Pose,
        depth: &DepthImage,
        truth: Pose,
    ) -> Result<&[FrameReport]> {
        self.step_inputs(&RoundInputs::Shared {
            control,
            depth,
            truth,
        })
    }

    /// Advances every session one frame on **per-agent** `(control,
    /// depth, truth)` triples — agent `i` consumes `controls[i]`,
    /// `depths[i]`, `truths[i]`. This is the fault-injection entry
    /// point: a scenario sweep feeds faulted inputs to a subset of
    /// agents while the rest fly clean, and the determinism contract
    /// (bit-identity across coalescing on/off, worker count, and task
    /// order) holds per agent exactly as for [`Fleet::step_round`].
    ///
    /// # Errors
    ///
    /// Rejects input slices whose length differs from the agent count;
    /// otherwise as [`Fleet::step_round`].
    pub fn step_round_each(
        &mut self,
        controls: &[Pose],
        depths: &[DepthImage],
        truths: &[Pose],
    ) -> Result<&[FrameReport]> {
        let n = self.sessions.len();
        if controls.len() != n || depths.len() != n || truths.len() != n {
            return Err(ServeError::Unsupported(format!(
                "per-agent round needs {n} controls/depths/truths, got {}/{}/{}",
                controls.len(),
                depths.len(),
                truths.len()
            )));
        }
        self.step_inputs(&RoundInputs::PerAgent {
            controls,
            depths,
            truths,
        })
    }

    fn step_inputs(&mut self, inputs: &RoundInputs<'_>) -> Result<&[FrameReport]> {
        if self.config.coalesce {
            self.step_round_coalesced(inputs)
        } else {
            self.step_round_independent(inputs)
        }
    }

    /// The baseline: every session runs its monolithic step — inline in
    /// permutation order with one worker (the allocation-free steady
    /// state), or scheduled over the worker pool.
    fn step_round_independent(&mut self, inputs: &RoundInputs<'_>) -> Result<&[FrameReport]> {
        let t0 = Instant::now();
        let n = self.sessions.len();
        if self.config.workers <= 1 {
            self.results.clear();
            self.results.resize_with(n, || None);
            for &idx in &self.order {
                let (control, depth, truth) = inputs.get(idx);
                let report = self.sessions[idx].step(control, depth, truth);
                self.last_latencies_ns[idx] = t0.elapsed().as_nanos() as u64;
                self.results[idx] = Some(report);
            }
            return self.collect_reports();
        }
        // Threaded round: sessions are staged out by value for the
        // work-stealing pool (allocates by design — so does thread
        // spawning). Outputs are bit-identical to the inline path.
        let order = &self.order;
        let mut tasks: Vec<Option<(usize, LocalizationPipeline)>> =
            std::mem::take(&mut self.sessions)
                .into_iter()
                .enumerate()
                .map(Some)
                .collect(); // lint: allow(hot-path-alloc) threaded staging collects sessions by value; threaded rounds allocate by design
        let tasks: Vec<(usize, LocalizationPipeline)> = order
            .iter()
            .map(|&i| {
                tasks[i]
                    .take()
                    .expect("permutation visited a session twice")
            })
            .collect(); // lint: allow(hot-path-alloc) threaded staging collects sessions by value; threaded rounds allocate by design
        let done = run_tasks(self.config.workers, tasks, |_, (idx, mut session)| {
            let (control, depth, truth) = inputs.get(idx);
            let report = session.step(control, depth, truth);
            (idx, session, report, t0.elapsed().as_nanos() as u64)
        });
        self.absorb_done(done);
        self.collect_reports()
    }

    /// Puts threaded-phase results back in session order: restores the
    /// session vector and stages each session's result and latency.
    fn absorb_done(
        &mut self,
        done: Vec<(
            usize,
            LocalizationPipeline,
            navicim_core::Result<FrameReport>,
            u64,
        )>,
    ) {
        let n = done.len();
        self.results.clear();
        self.results.resize_with(n, || None);
        let mut sessions: Vec<Option<LocalizationPipeline>> = (0..n).map(|_| None).collect(); // lint: allow(hot-path-alloc) threaded staging collects sessions by value; threaded rounds allocate by design
        for (idx, session, report, latency_ns) in done {
            sessions[idx] = Some(session);
            self.results[idx] = Some(report);
            self.last_latencies_ns[idx] = latency_ns;
        }
        self.sessions = sessions
            .into_iter()
            .map(|s| s.expect("round lost a session"))
            .collect(); // lint: allow(hot-path-alloc) threaded staging collects sessions by value; threaded rounds allocate by design
    }

    /// Drains the staged per-session results into the reused report
    /// buffer, surfacing the first per-session error (by session index,
    /// matching the former collect-based behavior).
    fn collect_reports(&mut self) -> Result<&[FrameReport]> {
        self.reports.clear();
        for r in self.results.iter_mut() {
            match r.take().expect("round lost a report") {
                Ok(report) => self.reports.push(report),
                Err(e) => return Err(ServeError::from(e)),
            }
        }
        Ok(&self.reports)
    }

    /// The coalesced fast path: begin / merge-evaluate / finish. With
    /// one worker both per-session phases run inline in permutation
    /// order through the reused staging buffers — the allocation-free
    /// steady state; threaded rounds stage sessions by value for the
    /// work-stealing pool. Outputs are bit-identical either way.
    fn step_round_coalesced(&mut self, inputs: &RoundInputs<'_>) -> Result<&[FrameReport]> {
        let t0 = Instant::now();
        let n = self.sessions.len();
        if self.config.workers <= 1 {
            // Phase A inline: gate + VO + motion prediction + staging.
            self.pendings.clear();
            self.pendings.resize_with(n, || None);
            let mut first_err: Option<ServeError> = None;
            for &idx in &self.order {
                let (control, depth, _) = inputs.get(idx);
                match self.sessions[idx].begin_frame(control, depth) {
                    Ok(p) => self.pendings[idx] = Some(p),
                    Err(e) => {
                        first_err.get_or_insert(ServeError::from(e));
                    }
                }
            }
            if let Some(e) = first_err {
                return Err(e);
            }
            self.coalesce_and_serve()?;
            // Phase B inline: commit slices and finish frames.
            self.results.clear();
            self.results.resize_with(n, || None);
            for &idx in &self.order {
                let pending = self.pendings[idx].take().expect("pending missing");
                let (_, _, truth) = inputs.get(idx);
                let (start, count) = self.spans[idx];
                let slot = pending.slot();
                let scratch = &self.slots[slot];
                let lls = &scratch.lls[start..start + count];
                let currents = &scratch.currents[start..start + count];
                let session = &mut self.sessions[idx];
                session.backend_mut(slot).absorb_served_gated(
                    lls.len(),
                    currents,
                    self.session_acts[idx],
                );
                self.results[idx] = Some(session.finish_frame(pending, lls, truth));
            }
            // Coalesced rounds complete every agent's frame at the
            // barrier.
            let round_ns = t0.elapsed().as_nanos() as u64;
            self.last_latencies_ns.fill(round_ns);
            return self.collect_reports();
        }

        // Phase A (threaded): gate + VO + motion prediction + staging.
        let order = &self.order;
        let mut tasks: Vec<Option<(usize, LocalizationPipeline)>> =
            std::mem::take(&mut self.sessions)
                .into_iter()
                .enumerate()
                .map(Some)
                .collect(); // lint: allow(hot-path-alloc) threaded staging collects sessions by value; threaded rounds allocate by design
        let tasks: Vec<(usize, LocalizationPipeline)> = order
            .iter()
            .map(|&i| {
                tasks[i]
                    .take()
                    .expect("permutation visited a session twice")
            })
            .collect(); // lint: allow(hot-path-alloc) threaded staging collects sessions by value; threaded rounds allocate by design
        let begun = run_tasks(self.config.workers, tasks, |_, (idx, mut session)| {
            let (control, depth, _) = inputs.get(idx);
            let pending = session.begin_frame(control, depth);
            (idx, session, pending)
        });
        let mut sessions: Vec<Option<LocalizationPipeline>> = (0..n).map(|_| None).collect(); // lint: allow(hot-path-alloc) threaded staging collects sessions by value; threaded rounds allocate by design
        self.pendings.clear();
        self.pendings.resize_with(n, || None);
        let mut first_err: Option<ServeError> = None;
        for (idx, session, pending) in begun {
            sessions[idx] = Some(session);
            match pending {
                Ok(p) => self.pendings[idx] = Some(p),
                Err(e) => {
                    first_err.get_or_insert(ServeError::from(e));
                }
            }
        }
        self.sessions = sessions
            .into_iter()
            .map(|s| s.expect("round lost a session"))
            .collect(); // lint: allow(hot-path-alloc) threaded staging collects sessions by value; threaded rounds allocate by design
        if let Some(e) = first_err {
            return Err(e);
        }
        self.coalesce_and_serve()?;

        // Phase B (threaded): commit slices and finish frames, work-
        // stealing again. Tasks borrow their slices straight out of the
        // slot scratch — the executor's scope outlives the round, and
        // the scratch is read-only until every task has joined.
        let slots = &self.slots;
        type PhaseBTask<'a> = (
            usize,
            LocalizationPipeline,
            PendingFrame,
            &'a [f64],
            &'a [f64],
            u64,
        );
        let mut tasks: Vec<Option<PhaseBTask<'_>>> = Vec::with_capacity(n); // lint: allow(hot-path-alloc) threaded Phase B stages borrowed tasks; threaded rounds allocate by design
        for (idx, session) in self.sessions.drain(..).enumerate() {
            let pending = self.pendings[idx].take().expect("pending missing");
            let (start, count) = self.spans[idx];
            let scratch = &slots[pending.slot()];
            let lls = &scratch.lls[start..start + count];
            let currents = &scratch.currents[start..start + count];
            // lint: allow(hot-path-alloc) threaded Phase B stages borrowed tasks; threaded rounds allocate by design
            tasks.push(Some((
                idx,
                session,
                pending,
                lls,
                currents,
                self.session_acts[idx],
            )));
        }
        let tasks: Vec<PhaseBTask<'_>> = self
            .order
            .iter()
            .map(|&i| {
                tasks[i]
                    .take()
                    .expect("permutation visited a session twice")
            })
            .collect(); // lint: allow(hot-path-alloc) threaded staging collects sessions by value; threaded rounds allocate by design
        let done = run_tasks(
            self.config.workers,
            tasks,
            |_, (idx, mut session, pending, lls, currents, acts)| {
                let (_, _, truth) = inputs.get(idx);
                session
                    .backend_mut(pending.slot())
                    .absorb_served_gated(lls.len(), currents, acts);
                let report = session.finish_frame(pending, lls, truth);
                (idx, session, report, 0u64)
            },
        );
        self.absorb_done(done);
        // Coalesced rounds complete every agent's frame at the barrier.
        let round_ns = t0.elapsed().as_nanos() as u64;
        self.last_latencies_ns.fill(round_ns);
        self.collect_reports()
    }

    /// Coalesces every session's staged batch into one mega-batch per
    /// slot — segments in session-index order so every session's slice
    /// draws its own noise indices — and serves each through the fleet
    /// evaluator, routing per-segment column-activation counts back to
    /// the sessions that staged them (so Phase B commits exactly the
    /// accounting a solo evaluation would have recorded).
    fn coalesce_and_serve(&mut self) -> Result<()> {
        for slot_scratch in &mut self.slots {
            slot_scratch.batch.clear();
            slot_scratch.segments.clear();
            slot_scratch.seg_sessions.clear();
        }
        self.spans.clear();
        self.session_acts.fill(0);
        for (idx, session) in self.sessions.iter().enumerate() {
            let slot = self.pendings[idx].as_ref().expect("pending missing").slot();
            let staged = session.staged_batch();
            let count = staged.len();
            let scratch = &mut self.slots[slot];
            let start = scratch.batch.len();
            // lint: allow(hot-path-alloc) amortized push into a buffer cleared each round; capacity is retained
            self.spans.push((start, count));
            if count == 0 {
                continue;
            }
            if let Some(stream) = session.backend(slot).noise_stream() {
                let audit = self.audits[idx][slot]
                    .as_mut()
                    .expect("analog slot lost its auditor");
                if let Err(source) = audit.claim(&stream, count as u64) {
                    return Err(ServeError::Audit {
                        session: idx,
                        slot,
                        source,
                    });
                }
                // lint: allow(hot-path-alloc) amortized push into a buffer cleared each round; capacity is retained
                scratch.segments.push(NoiseSegment { start, stream });
                // lint: allow(hot-path-alloc) amortized push into a buffer cleared each round; capacity is retained
                scratch.seg_sessions.push(idx);
            }
            scratch.batch.extend_from_batch(staged);
        }
        for (slot, scratch) in self.slots.iter_mut().enumerate() {
            let total = scratch.batch.len();
            if total == 0 {
                continue;
            }
            scratch.lls.resize(total, 0.0);
            scratch.currents.resize(total, 0.0);
            scratch.seg_acts.clear();
            scratch.seg_acts.resize(scratch.segments.len(), 0);
            self.evaluators[slot].serve_segments_counted(
                &scratch.batch,
                &scratch.segments,
                &mut scratch.lls,
                &mut scratch.currents,
                &mut scratch.seg_acts,
            );
            for (&sidx, &acts) in scratch.seg_sessions.iter().zip(&scratch.seg_acts) {
                self.session_acts[sidx] = acts;
            }
        }
        Ok(())
    }

    /// Streams the whole dataset, broadcasting each frame to every
    /// session. Returns per-session frame reports,
    /// `reports[session][frame]`.
    ///
    /// # Errors
    ///
    /// Propagates round failures.
    pub fn run(&mut self, dataset: &LocalizationDataset) -> Result<Vec<Vec<FrameReport>>> {
        let controls = dataset.control_deltas();
        let mut per_session: Vec<Vec<FrameReport>> =
            (0..self.sessions.len()).map(|_| Vec::new()).collect();
        for (t, control) in controls.iter().enumerate() {
            let truth = dataset.frames[t + 1].pose;
            let reports = self.step_round(control, &dataset.frames[t + 1].depth, truth)?;
            for (s, report) in reports.iter().enumerate() {
                per_session[s].push(report.clone());
            }
        }
        Ok(per_session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_core::localization::LocalizerConfig;
    use navicim_core::pipeline::{GateConfig, GateKind, LocalizationPipeline, ANALOG_SLOT};
    use navicim_core::registry::{CIM_HMGM, DIGITAL_GMM};
    use navicim_scene::dataset::{LocalizationConfig, LocalizationDataset};

    /// Clear-don't-drop across rounds: after one full pass over the
    /// dataset has sized every buffer to the fleet's working set, further
    /// rounds must not grow any round-scratch allocation — the coalesced
    /// steady state is allocation-free.
    #[test]
    fn coalesced_round_scratch_reaches_allocation_steady_state() {
        let ds = LocalizationDataset::generate(
            &LocalizationConfig {
                image_width: 24,
                image_height: 18,
                map_points: 500,
                frames: 6,
                ..LocalizationConfig::default()
            },
            11,
        )
        .expect("dataset generates");
        let config = LocalizerConfig {
            num_particles: 100,
            pixel_stride: 7,
            components: 8,
            // Pinned to the analog slot so every round routes the same
            // mega-batch through the counted CIM serve path.
            gate: GateConfig {
                backends: vec![DIGITAL_GMM.into(), CIM_HMGM.into()],
                policy: GateKind::Always(ANALOG_SLOT),
            },
            seed: 5,
            ..LocalizerConfig::default()
        };
        let prototype = LocalizationPipeline::build(&ds, config).expect("prototype builds");
        let mut fleet = Fleet::new(
            &prototype,
            3,
            900,
            FleetConfig {
                workers: 2,
                coalesce: true,
                order: TaskOrder::Forward,
            },
        )
        .expect("fleet builds");
        let footprint = |f: &Fleet| {
            let mut v = vec![f.spans.capacity(), f.session_acts.capacity()];
            for s in &f.slots {
                v.extend([
                    s.batch.capacity(),
                    s.segments.capacity(),
                    s.seg_sessions.capacity(),
                    s.seg_acts.capacity(),
                    s.lls.capacity(),
                    s.currents.capacity(),
                ]);
            }
            v
        };
        // Warm-up pass: every frame's working set is seen once.
        let controls = ds.control_deltas();
        for (t, control) in controls.iter().enumerate() {
            fleet
                .step_round(control, &ds.frames[t + 1].depth, ds.frames[t + 1].pose)
                .expect("warm-up round");
        }
        let warm = footprint(&fleet);
        assert!(
            warm.iter().sum::<usize>() > 0,
            "warm-up should have sized the scratch"
        );
        // Second pass over the same observations: same per-round working
        // sets, so every capacity must hold exactly.
        for (t, control) in controls.iter().enumerate() {
            fleet
                .step_round(control, &ds.frames[t + 1].depth, ds.frames[t + 1].pose)
                .expect("steady-state round");
            assert_eq!(
                footprint(&fleet),
                warm,
                "round {t} of the second pass grew the round scratch"
            );
        }
    }
}
