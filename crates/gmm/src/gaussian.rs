//! Gaussian mixture models (diagonal and full covariance).
//!
//! This is the *conventional* map representation of the paper's Section II:
//! a point cloud fitted with a GMM whose density is evaluated per projected
//! depth pixel on a digital datapath. The CIM co-design replaces it with
//! the [`crate::hmg`] family.

use crate::prune::{PruneConfig, PruneIndex, PruneScratch, PRUNE_TILE};
use crate::{GmmError, Result};
use navicim_backend::{check_batch_shape, par, LikelihoodBackend, PointBatch};
use navicim_math::linalg::Matrix;
use navicim_math::rng::{Rng64, SampleExt};
use navicim_math::simd::{log_sum_exp_fast, F64x4, LANES};
use navicim_math::stats::{mvn_logpdf, LN_2PI};

/// Covariance parameterization of a [`Gmm`].
#[derive(Debug, Clone, PartialEq)]
pub enum Covariance {
    /// Per-component per-axis variances (axis-aligned ellipsoids).
    Diagonal(Vec<Vec<f64>>),
    /// Per-component full covariance matrices.
    Full(Vec<Matrix>),
}

/// A Gaussian mixture model.
#[derive(Debug, Clone)]
pub struct Gmm {
    weights: Vec<f64>,
    means: Vec<Vec<f64>>,
    covariance: Covariance,
    /// Spatial culling index for the batch paths; `None` (the default)
    /// keeps every evaluation path untouched. See [`crate::prune`].
    prune: Option<PruneIndex>,
    /// Hoisted diagonal-plan constants, built once at construction (the
    /// parameters are immutable after [`Gmm::new`]). `None` for full
    /// covariance.
    diag_plan: Option<DiagPlan>,
    /// Reused component/axis scratch for the single-chunk batch path, so
    /// a warmed model evaluates frames without touching the heap.
    scratch: BatchScratch,
}

/// Equality is over the model parameters (and the pruning index derived
/// from them): `diag_plan` is a pure function of those parameters and
/// `scratch` is evaluation state, so neither can distinguish models.
impl PartialEq for Gmm {
    fn eq(&self, other: &Self) -> bool {
        self.weights == other.weights
            && self.means == other.means
            && self.covariance == other.covariance
            && self.prune == other.prune
    }
}

impl Gmm {
    /// Assembles a GMM from parts.
    ///
    /// # Errors
    ///
    /// Returns [`GmmError::InvalidArgument`] when the component counts or
    /// dimensions disagree, or weights are not a probability vector.
    pub fn new(weights: Vec<f64>, means: Vec<Vec<f64>>, covariance: Covariance) -> Result<Self> {
        let k = weights.len();
        if k == 0 || means.len() != k {
            return Err(GmmError::InvalidArgument(
                "weights and means must have the same non-zero length".into(),
            ));
        }
        let dim = means[0].len();
        if means.iter().any(|m| m.len() != dim) {
            return Err(GmmError::InconsistentDimensions);
        }
        let wsum: f64 = weights.iter().sum();
        if weights.iter().any(|&w| w < 0.0) || (wsum - 1.0).abs() > 1e-6 {
            return Err(GmmError::InvalidArgument(
                "weights must be non-negative and sum to 1".into(),
            ));
        }
        match &covariance {
            Covariance::Diagonal(vars) => {
                if vars.len() != k || vars.iter().any(|v| v.len() != dim) {
                    return Err(GmmError::InconsistentDimensions);
                }
                if vars.iter().flatten().any(|&v| v <= 0.0) {
                    return Err(GmmError::InvalidArgument(
                        "variances must be positive".into(),
                    ));
                }
            }
            Covariance::Full(covs) => {
                if covs.len() != k || covs.iter().any(|c| c.rows() != dim || c.cols() != dim) {
                    return Err(GmmError::InconsistentDimensions);
                }
            }
        }
        let diag_plan = DiagPlan::build(&weights, &covariance);
        Ok(Self {
            weights,
            means,
            covariance,
            prune: None,
            diag_plan,
            scratch: BatchScratch::default(),
        })
    }

    /// Enables (or, with a disabled config, clears) spatial component
    /// pruning for the batch paths. Builds the [`PruneIndex`] once; a
    /// full-covariance model has no bound model and stays unpruned.
    /// With pruning active, batch results carry the documented additive
    /// [`crate::prune::PRUNE_EPSILON`] tolerance; disabled (the default)
    /// they are bit-identical to a model that never saw this call.
    pub fn set_prune(&mut self, config: PruneConfig) {
        self.prune = PruneIndex::for_diag_gmm(self, config);
    }

    /// The active pruning index, if any.
    pub fn prune_index(&self) -> Option<&PruneIndex> {
        self.prune.as_ref()
    }

    /// Number of mixture components.
    pub fn num_components(&self) -> usize {
        self.weights.len()
    }

    /// Data dimensionality.
    pub fn dim(&self) -> usize {
        self.means[0].len()
    }

    /// Mixture weights (sum to 1).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Component means.
    pub fn means(&self) -> &[Vec<f64>] {
        &self.means
    }

    /// Covariance parameterization.
    pub fn covariance(&self) -> &Covariance {
        &self.covariance
    }

    /// Per-component standard deviations for diagonal models.
    ///
    /// Returns `None` for full-covariance models.
    pub fn diag_std_devs(&self) -> Option<Vec<Vec<f64>>> {
        match &self.covariance {
            Covariance::Diagonal(vars) => Some(
                vars.iter()
                    .map(|v| v.iter().map(|x| x.sqrt()).collect())
                    .collect(),
            ),
            Covariance::Full(_) => None,
        }
    }

    /// Log-density of the mixture at `x`.
    ///
    /// Scalar adapter over the batch path: builds the per-component
    /// evaluation plan and scores a single point with it, so scalar and
    /// batch evaluation are bit-identical by construction.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the model dimension (programming
    /// error at the call site).
    pub fn log_pdf(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim(), "query dimension mismatch");
        let plan = self.eval_plan();
        let mut terms = Vec::with_capacity(self.num_components());
        plan.log_pdf(x, &mut terms)
    }

    /// The reusable evaluation plan for this mixture.
    ///
    /// The plan hoists everything that does not depend on the query point
    /// — per-component log-weights, normalization constants and inverse
    /// variances. The hoisted data is computed once at construction and
    /// borrowed here, so taking a plan is free: a batch of N points (and
    /// every scalar [`Gmm::log_pdf`] call) shares the same constants,
    /// which is what makes them bit-identical.
    pub fn eval_plan(&self) -> GmmEvalPlan<'_> {
        GmmEvalPlan {
            gmm: self,
            diag: self.diag_plan.as_ref(),
        }
    }

    /// Density of the mixture at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the model dimension.
    pub fn pdf(&self, x: &[f64]) -> f64 {
        self.log_pdf(x).exp()
    }

    /// Draws one sample from the mixture.
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let k = rng.sample_weighted(&self.weights);
        match &self.covariance {
            Covariance::Diagonal(vars) => self.means[k]
                .iter()
                .zip(&vars[k])
                .map(|(&m, &v)| rng.sample_normal(m, v.sqrt()))
                .collect(),
            Covariance::Full(covs) => {
                let chol = covs[k]
                    .cholesky()
                    .expect("covariances validated at construction");
                let z: Vec<f64> = (0..self.dim())
                    .map(|_| rng.sample_standard_normal())
                    .collect();
                let l = chol.lower();
                // lint: reduction-order lower-triangular forward order, fixed by the Cholesky factor layout
                (0..self.dim())
                    .map(|i| self.means[k][i] + (0..=i).map(|j| l[(i, j)] * z[j]).sum::<f64>())
                    .collect()
            }
        }
    }

    /// Bayesian information criterion for this model on a data set
    /// (lower is better).
    pub fn bic(&self, points: &[Vec<f64>]) -> f64 {
        let n = points.len().max(1) as f64;
        let loglik: f64 = points.iter().map(|p| self.log_pdf(p)).sum();
        let d = self.dim() as f64;
        let k = self.num_components() as f64;
        let params = match &self.covariance {
            Covariance::Diagonal(_) => k * (2.0 * d) + (k - 1.0),
            Covariance::Full(_) => k * (d + d * (d + 1.0) / 2.0) + (k - 1.0),
        };
        params * n.ln() - 2.0 * loglik
    }
}

/// Hoisted per-component constants for diagonal mixtures.
#[derive(Debug, Clone)]
struct DiagPlan {
    /// Per component: `ln w_k − Σᵢ ln σ_{k,i} − d/2 · ln 2π`.
    consts: Vec<f64>,
    /// Per component × axis: `−1/(2σ²)`, flattened row-major.
    neg_half_inv_vars: Vec<f64>,
}

impl DiagPlan {
    /// Hoists the query-independent constants of a validated diagonal
    /// parameter set; `None` for full covariance (no hoisted form).
    fn build(weights: &[f64], covariance: &Covariance) -> Option<Self> {
        let Covariance::Diagonal(vars) = covariance else {
            return None;
        };
        let dim = vars[0].len();
        let mut consts = Vec::with_capacity(weights.len());
        let mut neg_half_inv_vars = Vec::with_capacity(weights.len() * dim);
        for (k, vk) in vars.iter().enumerate() {
            let mut c = weights[k].max(1e-300).ln() - 0.5 * dim as f64 * LN_2PI;
            for &v in vk {
                c -= 0.5 * v.ln();
                neg_half_inv_vars.push(-0.5 / v);
            }
            consts.push(c);
        }
        Some(Self {
            consts,
            neg_half_inv_vars,
        })
    }
}

/// Reused per-evaluation buffers of the batch likelihood kernel:
/// component terms (scalar and 4-wide), the transposed axis lanes and the
/// pruning tile scratch. Held by the [`Gmm`] so the single-chunk path —
/// the per-frame production configuration — is allocation-free once
/// warmed; the threaded path gives each chunk closure its own.
#[derive(Debug, Clone, Default)]
struct BatchScratch {
    terms: Vec<f64>,
    terms4: Vec<F64x4>,
    xs4: Vec<F64x4>,
    prune: PruneScratch,
}

/// A reusable, query-independent evaluation plan for a [`Gmm`].
///
/// Built once per batch (or per scalar call) by [`Gmm::eval_plan`]. For
/// diagonal mixtures the plan carries hoisted constants; full-covariance
/// mixtures fall back to the per-point Cholesky path.
#[derive(Debug, Clone)]
pub struct GmmEvalPlan<'a> {
    gmm: &'a Gmm,
    diag: Option<&'a DiagPlan>,
}

impl GmmEvalPlan<'_> {
    /// Log-density of one point, using `terms` as component scratch.
    ///
    /// This is also the scalar *remainder tail* of the 4-wide batch path
    /// ([`GmmEvalPlan::log_pdf4`]): both apply the identical per-point
    /// operation sequence (fused multiply-add quadratic, `exp_fast`-based
    /// log-sum-exp), so a point's score does not depend on whether it was
    /// evaluated here or in a vector lane.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the model dimension.
    pub fn log_pdf(&self, x: &[f64], terms: &mut Vec<f64>) -> f64 {
        let gmm = self.gmm;
        let dim = gmm.dim();
        assert_eq!(x.len(), dim, "query dimension mismatch");
        terms.clear();
        match self.diag {
            Some(plan) => {
                for (k, &c) in plan.consts.iter().enumerate() {
                    let nhiv = &plan.neg_half_inv_vars[k * dim..(k + 1) * dim];
                    let mean = &gmm.means[k];
                    let mut quad = 0.0;
                    for i in 0..dim {
                        let d = x[i] - mean[i];
                        quad = (nhiv[i] * d).mul_add(d, quad);
                    }
                    terms.push(c + quad);
                }
            }
            None => {
                let Covariance::Full(covs) = &gmm.covariance else {
                    unreachable!("plan without diag data implies full covariance")
                };
                for k in 0..gmm.num_components() {
                    let lw = gmm.weights[k].max(1e-300).ln();
                    let lp = mvn_logpdf(x, &gmm.means[k], &covs[k]).unwrap_or(f64::NEG_INFINITY);
                    terms.push(lw + lp);
                }
            }
        }
        log_sum_exp_fast(terms)
    }

    /// Log-density of four points at once through explicit f64 lanes.
    ///
    /// `flat` must hold exactly four consecutive points in row-major
    /// layout (`4 × dim` doubles, as stored by
    /// [`PointBatch`]); `terms4` and `xs4` are reusable component/axis
    /// scratch. Returns `None` for full-covariance mixtures, which have
    /// no lane path — callers fall back to [`GmmEvalPlan::log_pdf`].
    ///
    /// Every lane applies exactly the operation sequence of the scalar
    /// [`GmmEvalPlan::log_pdf`] — same fused multiply-adds, same
    /// `exp_fast`, same reduction order over components — so the result
    /// for each point is bit-identical to scoring it alone. The batched
    /// [`LikelihoodBackend`] impl and the property suite rely on this.
    ///
    /// # Panics
    ///
    /// Panics if `flat.len() != 4 * dim`.
    pub fn log_pdf4(
        &self,
        flat: &[f64],
        terms4: &mut Vec<F64x4>,
        xs4: &mut Vec<F64x4>,
    ) -> Option<[f64; 4]> {
        let plan = self.diag?;
        let gmm = self.gmm;
        let dim = gmm.dim();
        assert_eq!(flat.len(), LANES * dim, "expected exactly four points");
        // Transpose once: axis i of each of the four points, reused by
        // every component.
        xs4.clear();
        for i in 0..dim {
            xs4.push(F64x4::new([
                flat[i],
                flat[dim + i],
                flat[2 * dim + i],
                flat[3 * dim + i],
            ]));
        }
        terms4.clear();
        for (k, &c) in plan.consts.iter().enumerate() {
            let nhiv = &plan.neg_half_inv_vars[k * dim..(k + 1) * dim];
            let mean = &gmm.means[k];
            let mut quad = F64x4::splat(0.0);
            for i in 0..dim {
                let d = xs4[i] - F64x4::splat(mean[i]);
                quad = (F64x4::splat(nhiv[i]) * d).mul_add(d, quad);
            }
            terms4.push(F64x4::splat(c) + quad);
        }
        // Lane-wise log-sum-exp, mirroring `log_sum_exp_fast` per lane:
        // max fold (NaN-skipping `f64::max` semantics), then the ordered
        // sum of `exp_fast(x − m)`, with the `-inf` early-out becoming a
        // per-lane select.
        let mut m = F64x4::splat(f64::NEG_INFINITY);
        for t in terms4.iter() {
            m = m.max(*t);
        }
        let mut s = F64x4::splat(0.0);
        for t in terms4.iter() {
            s = s + (*t - m).exp();
        }
        let mut out = [0.0; LANES];
        for (lane, o) in out.iter_mut().enumerate() {
            *o = if m.lane(lane) == f64::NEG_INFINITY {
                f64::NEG_INFINITY
            } else {
                m.lane(lane) + s.lane(lane).ln()
            };
        }
        Some(out)
    }

    /// [`Self::log_pdf`] restricted to the candidate components of a
    /// pruned tile (ascending ids). Applies the identical per-component
    /// math and reduction, just over fewer terms — the dropped terms are
    /// bounded below the survivors' floor by the prune margin, so the
    /// result differs from the full evaluation by at most
    /// [`crate::prune::PRUNE_EPSILON`] nats.
    ///
    /// # Panics
    ///
    /// Panics on a full-covariance plan (no pruning path) or dimension
    /// mismatch.
    pub fn log_pdf_subset(&self, x: &[f64], cands: &[u32], terms: &mut Vec<f64>) -> f64 {
        let plan = self.diag.expect("pruning requires a diagonal plan");
        let gmm = self.gmm;
        let dim = gmm.dim();
        assert_eq!(x.len(), dim, "query dimension mismatch");
        terms.clear();
        for &j in cands {
            let k = j as usize;
            let c = plan.consts[k];
            let nhiv = &plan.neg_half_inv_vars[k * dim..(k + 1) * dim];
            let mean = &gmm.means[k];
            let mut quad = 0.0;
            for i in 0..dim {
                let d = x[i] - mean[i];
                quad = (nhiv[i] * d).mul_add(d, quad);
            }
            terms.push(c + quad);
        }
        log_sum_exp_fast(terms)
    }

    /// [`Self::log_pdf4`] restricted to candidate components — the lane
    /// path of [`Self::log_pdf_subset`], bit-identical to it per point.
    pub fn log_pdf4_subset(
        &self,
        flat: &[f64],
        cands: &[u32],
        terms4: &mut Vec<F64x4>,
        xs4: &mut Vec<F64x4>,
    ) -> Option<[f64; 4]> {
        let plan = self.diag?;
        let gmm = self.gmm;
        let dim = gmm.dim();
        assert_eq!(flat.len(), LANES * dim, "expected exactly four points");
        xs4.clear();
        for i in 0..dim {
            xs4.push(F64x4::new([
                flat[i],
                flat[dim + i],
                flat[2 * dim + i],
                flat[3 * dim + i],
            ]));
        }
        terms4.clear();
        for &j in cands {
            let k = j as usize;
            let c = plan.consts[k];
            let nhiv = &plan.neg_half_inv_vars[k * dim..(k + 1) * dim];
            let mean = &gmm.means[k];
            let mut quad = F64x4::splat(0.0);
            for i in 0..dim {
                let d = xs4[i] - F64x4::splat(mean[i]);
                quad = (F64x4::splat(nhiv[i]) * d).mul_add(d, quad);
            }
            terms4.push(F64x4::splat(c) + quad);
        }
        let mut m = F64x4::splat(f64::NEG_INFINITY);
        for t in terms4.iter() {
            m = m.max(*t);
        }
        let mut s = F64x4::splat(0.0);
        for t in terms4.iter() {
            s = s + (*t - m).exp();
        }
        let mut out = [0.0; LANES];
        for (lane, o) in out.iter_mut().enumerate() {
            *o = if m.lane(lane) == f64::NEG_INFINITY {
                f64::NEG_INFINITY
            } else {
                m.lane(lane) + s.lane(lane).ln()
            };
        }
        Some(out)
    }
}

impl Gmm {
    /// Batch log-likelihood under an explicit [`par::ChunkPolicy`].
    ///
    /// Identical bits to [`LikelihoodBackend::log_likelihood_into`] for
    /// every `(chunk_len, workers)` pair — each point's math is
    /// self-contained, so chunk boundaries and thread assignment are
    /// unobservable in the output. Exposed so the thread-sweep bench can
    /// re-tune [`par::MIN_CHUNK`] against the production kernel.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or if `out.len() != batch.len()`.
    pub fn log_likelihood_into_policy(
        &mut self,
        batch: &PointBatch,
        out: &mut [f64],
        policy: par::ChunkPolicy,
    ) {
        let dim = Gmm::dim(self);
        check_batch_shape(dim, batch, out);
        let n = batch.len();
        let has_lane_path = matches!(self.covariance, Covariance::Diagonal(_));
        if policy.is_single_chunk(n) {
            // Sequential production path: evaluate the whole batch inline
            // through the struct-held scratch — allocation-free once the
            // buffers have grown to the component count.
            let mut scratch = std::mem::take(&mut self.scratch);
            let plan = self.eval_plan();
            match self.prune.as_ref() {
                Some(index) => {
                    Self::eval_range_pruned(&plan, index, batch, n, 0, out, &mut scratch)
                }
                None => Self::eval_range(&plan, has_lane_path, batch, 0, out, &mut scratch),
            }
            self.scratch = scratch;
            return;
        }
        let plan = self.eval_plan();
        if let Some(index) = self.prune.as_ref() {
            par::for_each_chunk_policy(policy, out, |start, chunk| {
                // Threaded chunk: worker-local scratch (allocates by
                // design — thread spawning already does). Bit-identical
                // to the inline path: scratch capacity is unobservable.
                // lint: allow(hot-path-alloc) threaded chunk closures own their scratch
                let mut scratch = BatchScratch::default();
                Self::eval_range_pruned(&plan, index, batch, n, start, chunk, &mut scratch);
            });
        } else {
            par::for_each_chunk_policy(policy, out, |start, chunk| {
                // lint: allow(hot-path-alloc) threaded chunk closures own their scratch
                let mut scratch = BatchScratch::default();
                Self::eval_range(&plan, has_lane_path, batch, start, chunk, &mut scratch);
            });
        }
    }

    /// Pruned evaluation of `chunk` (the output slice anchored at batch
    /// index `start`): fixed tiles anchored at absolute batch indices
    /// share one candidate query, so the pruning decision — and therefore
    /// the output bits — cannot depend on chunk boundaries or thread
    /// assignment.
    fn eval_range_pruned(
        plan: &GmmEvalPlan<'_>,
        index: &PruneIndex,
        batch: &PointBatch,
        n: usize,
        start: usize,
        chunk: &mut [f64],
        s: &mut BatchScratch,
    ) {
        let end = start + chunk.len();
        let mut pos = start;
        while pos < end {
            let tile_lo = (pos / PRUNE_TILE) * PRUNE_TILE;
            let tile_hi = (tile_lo + PRUNE_TILE).min(n);
            let piece_end = end.min(tile_hi);
            let tile = batch.flat_range(tile_lo, tile_hi);
            let cands = index.candidates_for_points(tile, &[], &mut s.prune);
            let mut offset = pos;
            match cands {
                Some(cands) => {
                    while offset + LANES <= piece_end {
                        let flat = batch.flat_range(offset, offset + LANES);
                        let four = plan
                            .log_pdf4_subset(flat, cands, &mut s.terms4, &mut s.xs4)
                            .expect("diagonal plan has a lane path");
                        chunk[offset - start..offset - start + LANES].copy_from_slice(&four);
                        offset += LANES;
                    }
                    for i in offset..piece_end {
                        chunk[i - start] = plan.log_pdf_subset(batch.point(i), cands, &mut s.terms);
                    }
                }
                // Non-finite tile: full evaluation, bit-identical
                // to the unpruned path for these points.
                None => {
                    while offset + LANES <= piece_end {
                        let flat = batch.flat_range(offset, offset + LANES);
                        let four = plan
                            .log_pdf4(flat, &mut s.terms4, &mut s.xs4)
                            .expect("diagonal plan has a lane path");
                        chunk[offset - start..offset - start + LANES].copy_from_slice(&four);
                        offset += LANES;
                    }
                    for i in offset..piece_end {
                        chunk[i - start] = plan.log_pdf(batch.point(i), &mut s.terms);
                    }
                }
            }
            pos = piece_end;
        }
    }

    /// Unpruned evaluation of `chunk` (anchored at batch index `start`).
    fn eval_range(
        plan: &GmmEvalPlan<'_>,
        has_lane_path: bool,
        batch: &PointBatch,
        start: usize,
        chunk: &mut [f64],
        s: &mut BatchScratch,
    ) {
        let mut offset = 0;
        // 4-wide body. Safe at any chunk boundary: each lane applies
        // the exact scalar per-point math, so the grouping below is
        // unobservable in the output bits.
        if has_lane_path {
            while offset + LANES <= chunk.len() {
                let flat = batch.flat_range(start + offset, start + offset + LANES);
                let four = plan
                    .log_pdf4(flat, &mut s.terms4, &mut s.xs4)
                    .expect("diagonal plan has a lane path");
                chunk[offset..offset + LANES].copy_from_slice(&four);
                offset += LANES;
            }
        }
        // Scalar remainder tail (and the whole chunk for full
        // covariance models).
        for (i, o) in chunk.iter_mut().enumerate().skip(offset) {
            *o = plan.log_pdf(batch.point(start + i), &mut s.terms);
        }
    }
}

impl LikelihoodBackend for Gmm {
    fn dim(&self) -> usize {
        Gmm::dim(self)
    }

    fn log_likelihood_into(&mut self, batch: &PointBatch, out: &mut [f64]) {
        self.log_likelihood_into_policy(batch, out, par::ChunkPolicy::auto());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_math::approx_eq;
    use navicim_math::rng::Pcg32;
    use navicim_math::stats;

    fn simple_diag() -> Gmm {
        Gmm::new(
            vec![0.4, 0.6],
            vec![vec![0.0, 0.0], vec![4.0, 4.0]],
            Covariance::Diagonal(vec![vec![1.0, 1.0], vec![0.25, 0.25]]),
        )
        .unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(Gmm::new(vec![], vec![], Covariance::Diagonal(vec![])).is_err());
        assert!(Gmm::new(
            vec![0.5, 0.6],
            vec![vec![0.0], vec![1.0]],
            Covariance::Diagonal(vec![vec![1.0], vec![1.0]])
        )
        .is_err());
        assert!(Gmm::new(
            vec![1.0],
            vec![vec![0.0]],
            Covariance::Diagonal(vec![vec![-1.0]])
        )
        .is_err());
    }

    #[test]
    fn pdf_integrates_to_one_1d() {
        let gmm = Gmm::new(
            vec![0.3, 0.7],
            vec![vec![-1.0], vec![2.0]],
            Covariance::Diagonal(vec![vec![0.5], vec![1.5]]),
        )
        .unwrap();
        // Trapezoid integration over a wide interval.
        let mut integral = 0.0;
        let (lo, hi, n) = (-10.0, 12.0, 4000);
        let h = (hi - lo) / n as f64;
        for i in 0..=n {
            let x = lo + i as f64 * h;
            let w = if i == 0 || i == n { 0.5 } else { 1.0 };
            integral += w * gmm.pdf(&[x]) * h;
        }
        assert!(approx_eq(integral, 1.0, 1e-4), "integral = {integral}");
    }

    #[test]
    fn log_pdf_peaks_at_heavy_component() {
        let gmm = simple_diag();
        assert!(gmm.log_pdf(&[4.0, 4.0]) > gmm.log_pdf(&[0.0, 0.0]));
        assert!(gmm.log_pdf(&[0.0, 0.0]) > gmm.log_pdf(&[10.0, -10.0]));
    }

    #[test]
    fn full_covariance_matches_diagonal_when_diag() {
        let diag = simple_diag();
        let full = Gmm::new(
            diag.weights().to_vec(),
            diag.means().to_vec(),
            Covariance::Full(vec![Matrix::diag(&[1.0, 1.0]), Matrix::diag(&[0.25, 0.25])]),
        )
        .unwrap();
        for p in [[0.0, 0.0], [1.0, 2.0], [4.0, 3.5]] {
            assert!(approx_eq(diag.log_pdf(&p), full.log_pdf(&p), 1e-9));
        }
    }

    #[test]
    fn sampling_statistics() {
        let gmm = simple_diag();
        let mut rng = Pcg32::seed_from_u64(1);
        let samples: Vec<Vec<f64>> = (0..20_000).map(|_| gmm.sample(&mut rng)).collect();
        // Fraction near the second blob should approach its weight.
        let near_second =
            samples.iter().filter(|s| s[0] > 2.0).count() as f64 / samples.len() as f64;
        assert!((near_second - 0.6).abs() < 0.02, "{near_second}");
        let xs: Vec<f64> = samples.iter().map(|s| s[0]).collect();
        let expect_mean = 0.4 * 0.0 + 0.6 * 4.0;
        assert!((stats::mean(&xs) - expect_mean).abs() < 0.05);
    }

    #[test]
    fn full_covariance_sampling_respects_correlation() {
        let cov = Matrix::from_rows(&[&[1.0, 0.8], &[0.8, 1.0]]).unwrap();
        let gmm = Gmm::new(vec![1.0], vec![vec![0.0, 0.0]], Covariance::Full(vec![cov])).unwrap();
        let mut rng = Pcg32::seed_from_u64(2);
        let samples: Vec<Vec<f64>> = (0..20_000).map(|_| gmm.sample(&mut rng)).collect();
        let xs: Vec<f64> = samples.iter().map(|s| s[0]).collect();
        let ys: Vec<f64> = samples.iter().map(|s| s[1]).collect();
        let r = stats::pearson(&xs, &ys).unwrap();
        assert!((r - 0.8).abs() < 0.03, "correlation = {r}");
    }

    #[test]
    fn bic_prefers_true_component_count() {
        // Data from 2 blobs: BIC(2) should beat BIC(1) built by merging.
        let gmm2 = simple_diag();
        let mut rng = Pcg32::seed_from_u64(3);
        let data: Vec<Vec<f64>> = (0..500).map(|_| gmm2.sample(&mut rng)).collect();
        let gmm1 = Gmm::new(
            vec![1.0],
            vec![vec![2.4, 2.4]],
            Covariance::Diagonal(vec![vec![4.8, 4.8]]),
        )
        .unwrap();
        assert!(gmm2.bic(&data) < gmm1.bic(&data));
    }

    #[test]
    fn diag_std_devs_accessor() {
        let gmm = simple_diag();
        let sds = gmm.diag_std_devs().unwrap();
        assert_eq!(sds[1], vec![0.5, 0.5]);
    }

    #[test]
    fn policy_batch_path_is_chunking_invariant() {
        let mut gmm = simple_diag();
        let mut rng = Pcg32::seed_from_u64(4);
        let mut batch = PointBatch::with_capacity(2, 11);
        for _ in 0..11 {
            batch.push(&gmm.sample(&mut rng));
        }
        let mut auto = vec![0.0; 11];
        gmm.log_likelihood_into(&batch, &mut auto);
        for policy in [par::ChunkPolicy::exact(3, 4), par::ChunkPolicy::exact(1, 2)] {
            let mut out = vec![0.0; 11];
            gmm.log_likelihood_into_policy(&batch, &mut out, policy);
            assert_eq!(out, auto);
        }
    }
}
