//! Mixture-model map representations for CIM localization.
//!
//! The paper's Section II represents the drone's 3-D flying domain as a
//! mixture model fitted to point-cloud data:
//!
//! - the *conventional* representation is a Gaussian mixture model
//!   ([`gaussian::Gmm`], fitted with EM in [`fit`]),
//! - the *co-designed* representation is a mixture of
//!   Harmonic-Mean-of-Gaussian kernels ([`hmg::HmgmModel`]) — the function
//!   family that floating-gate inverter arrays evaluate natively.
//!
//! [`kmeans`] provides the k-means++ initialization shared by both fitters.
//!
//! # Example
//!
//! ```
//! use navicim_gmm::fit::{fit_diag_gmm, FitConfig};
//! use navicim_math::rng::{Pcg32, SampleExt};
//!
//! // Two well-separated blobs.
//! let mut rng = Pcg32::seed_from_u64(1);
//! let mut points = Vec::new();
//! for _ in 0..200 {
//!     points.push(vec![rng.sample_normal(0.0, 0.1)]);
//!     points.push(vec![rng.sample_normal(5.0, 0.1)]);
//! }
//! let gmm = fit_diag_gmm(&points, 2, &FitConfig::default(), &mut rng).unwrap();
//! assert_eq!(gmm.num_components(), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fit;
pub mod gaussian;
pub mod hmg;
pub mod kmeans;
pub mod prune;

use std::error::Error;
use std::fmt;

/// Error type for mixture-model fitting and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum GmmError {
    /// Not enough data points for the requested component count.
    TooFewPoints {
        /// Number of points provided.
        points: usize,
        /// Number of components requested.
        components: usize,
    },
    /// Data points have inconsistent dimensionality.
    InconsistentDimensions,
    /// An argument was outside its valid domain.
    InvalidArgument(String),
    /// EM failed to produce a usable model (e.g. all responsibilities
    /// collapsed).
    DegenerateFit(String),
}

impl fmt::Display for GmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GmmError::TooFewPoints { points, components } => write!(
                f,
                "too few points ({points}) for {components} mixture components"
            ),
            GmmError::InconsistentDimensions => {
                write!(f, "data points have inconsistent dimensions")
            }
            GmmError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            GmmError::DegenerateFit(msg) => write!(f, "degenerate fit: {msg}"),
        }
    }
}

impl Error for GmmError {}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, GmmError>;

/// Validates that all points share the same non-zero dimension, returning it.
pub(crate) fn check_dims(points: &[Vec<f64>]) -> Result<usize> {
    let dim = points
        .first()
        .ok_or(GmmError::TooFewPoints {
            points: 0,
            components: 1,
        })?
        .len();
    if dim == 0 || points.iter().any(|p| p.len() != dim) {
        return Err(GmmError::InconsistentDimensions);
    }
    Ok(dim)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages() {
        let e = GmmError::TooFewPoints {
            points: 3,
            components: 5,
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn check_dims_rules() {
        assert_eq!(check_dims(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap(), 2);
        assert!(check_dims(&[]).is_err());
        assert!(check_dims(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(check_dims(&[vec![]]).is_err());
    }
}
