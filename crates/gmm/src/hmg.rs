//! Harmonic-Mean-of-Gaussian (HMG) kernels and mixtures.
//!
//! The switching current of the paper's multi-input inverter composes
//! per-axis Gaussian-like bells through a harmonic combination
//! `1/(1/g₁ + 1/g₂ + 1/g₃)` — *not* through the product that would yield a
//! multivariate Gaussian. The co-design insight of Section II is to learn
//! the 3-D map directly in this hardware-native family, so that likelihood
//! evaluation becomes a single analog read.
//!
//! This module defines the mathematical kernel ([`HmgKernel`]), mixtures of
//! it ([`HmgmModel`]) and a responsibility-reweighting fitter seeded from a
//! diagonal GMM ([`fit_hmgm`]).

use crate::fit::{fit_diag_gmm, FitConfig};
use crate::prune::{PruneConfig, PruneIndex, PruneScratch, PRUNE_TILE};
use crate::{check_dims, GmmError, Result};
use navicim_backend::{check_batch_shape, par, LikelihoodBackend, PointBatch};
use navicim_math::rng::Rng64;
use navicim_math::simd::{exp_fast, F64x4, LANES};

/// One Harmonic-Mean-of-Gaussian kernel.
///
/// Each axis `i` carries an unnormalized Gaussian
/// `gᵢ(x) = exp(−(xᵢ−μᵢ)²/(2σᵢ²))`; the kernel value is the harmonic mean
/// `d / Σᵢ 1/gᵢ(x)` scaled by `amplitude`, so the peak value equals
/// `amplitude` at `x = μ`.
///
/// ```
/// use navicim_gmm::hmg::HmgKernel;
/// let k = HmgKernel::new(vec![0.0, 0.0], vec![1.0, 1.0], 2.0).unwrap();
/// assert!((k.eval(&[0.0, 0.0]) - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HmgKernel {
    means: Vec<f64>,
    sigmas: Vec<f64>,
    amplitude: f64,
}

impl HmgKernel {
    /// Creates a kernel from per-axis means and sigmas and a peak
    /// amplitude.
    ///
    /// # Errors
    ///
    /// Returns [`GmmError::InvalidArgument`] for empty/mismatched
    /// parameters, non-positive sigmas or a non-positive amplitude.
    pub fn new(means: Vec<f64>, sigmas: Vec<f64>, amplitude: f64) -> Result<Self> {
        if means.is_empty() || means.len() != sigmas.len() {
            return Err(GmmError::InvalidArgument(
                "means and sigmas must have the same non-zero length".into(),
            ));
        }
        if sigmas.iter().any(|&s| !(s > 0.0) || !s.is_finite()) {
            return Err(GmmError::InvalidArgument("sigmas must be positive".into()));
        }
        if !(amplitude > 0.0) || !amplitude.is_finite() {
            return Err(GmmError::InvalidArgument(
                "amplitude must be positive".into(),
            ));
        }
        Ok(Self {
            means,
            sigmas,
            amplitude,
        })
    }

    /// Kernel dimensionality.
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// Per-axis means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-axis sigmas.
    pub fn sigmas(&self) -> &[f64] {
        &self.sigmas
    }

    /// Peak amplitude.
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }

    /// Per-axis Gaussian factor `gᵢ(xᵢ)` (in `(0, 1]`).
    ///
    /// Uses [`exp_fast`] — the same exponential the 4-wide lane path
    /// applies — so scalar and vectorized evaluation stay bit-identical
    /// (the whole digital HMG path carries `exp_fast`'s documented
    /// ulp-bounded tolerance relative to a `f64::exp` reference).
    pub fn axis_factor(&self, axis: usize, x: f64) -> f64 {
        let z = (x - self.means[axis]) / self.sigmas[axis];
        exp_fast(-0.5 * z * z)
    }

    /// Evaluates the kernel at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the kernel dimension.
    pub fn eval(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim(), "query dimension mismatch");
        let d = self.dim() as f64;
        let mut inv_sum = 0.0;
        for (i, &xi) in x.iter().enumerate() {
            let g = self.axis_factor(i, xi).max(1e-300);
            inv_sum += 1.0 / g;
        }
        self.amplitude * d / inv_sum
    }

    /// Evaluates the corresponding *product* (true multivariate Gaussian)
    /// kernel at `x`, used for tail-shape comparisons (paper Fig. 2(c,d)).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the kernel dimension.
    pub fn eval_product(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim(), "query dimension mismatch");
        let mut prod = self.amplitude;
        for (i, &xi) in x.iter().enumerate() {
            prod *= self.axis_factor(i, xi);
        }
        prod
    }
}

/// A mixture of HMG kernels: the co-designed map model of Section II.
#[derive(Debug, Clone)]
pub struct HmgmModel {
    weights: Vec<f64>,
    kernels: Vec<HmgKernel>,
    /// Spatial culling index for the batch paths; `None` (the default)
    /// keeps every evaluation path untouched. See [`crate::prune`].
    prune: Option<PruneIndex>,
    /// Reused lane/pruning scratch for the single-chunk batch path, so a
    /// warmed model evaluates frames without touching the heap.
    scratch: HmgScratch,
}

/// Reused per-evaluation buffers of the HMGM batch kernel: transposed
/// axis lanes plus the pruning tile scratch. Held by the model so the
/// single-chunk path is allocation-free once warmed; the threaded path
/// gives each chunk closure its own.
#[derive(Debug, Clone, Default)]
struct HmgScratch {
    xs4: Vec<F64x4>,
    prune: PruneScratch,
}

/// Equality is over the model parameters (and the pruning index derived
/// from them): `scratch` is evaluation state and cannot distinguish
/// models.
impl PartialEq for HmgmModel {
    fn eq(&self, other: &Self) -> bool {
        self.weights == other.weights && self.kernels == other.kernels && self.prune == other.prune
    }
}

impl HmgmModel {
    /// Assembles a mixture from weights and kernels.
    ///
    /// # Errors
    ///
    /// Returns [`GmmError::InvalidArgument`] for mismatched lengths,
    /// negative weights or inconsistent kernel dimensions.
    pub fn new(weights: Vec<f64>, kernels: Vec<HmgKernel>) -> Result<Self> {
        if weights.is_empty() || weights.len() != kernels.len() {
            return Err(GmmError::InvalidArgument(
                "weights and kernels must have the same non-zero length".into(),
            ));
        }
        if weights.iter().any(|&w| w < 0.0 || !w.is_finite()) {
            return Err(GmmError::InvalidArgument(
                "weights must be non-negative".into(),
            ));
        }
        let dim = kernels[0].dim();
        if kernels.iter().any(|k| k.dim() != dim) {
            return Err(GmmError::InconsistentDimensions);
        }
        Ok(Self {
            weights,
            kernels,
            prune: None,
            scratch: HmgScratch::default(),
        })
    }

    /// Enables (or, with a disabled config, clears) spatial component
    /// pruning for the batch paths. With pruning active, batch results
    /// carry the documented additive [`crate::prune::PRUNE_EPSILON`]
    /// tolerance; disabled (the default) they are bit-identical to a
    /// model that never saw this call.
    pub fn set_prune(&mut self, config: PruneConfig) {
        self.prune = PruneIndex::for_hmgm(self, config);
    }

    /// The active pruning index, if any.
    pub fn prune_index(&self) -> Option<&PruneIndex> {
        self.prune.as_ref()
    }

    /// Number of mixture components.
    pub fn num_components(&self) -> usize {
        self.kernels.len()
    }

    /// Model dimensionality.
    pub fn dim(&self) -> usize {
        self.kernels[0].dim()
    }

    /// Mixture weights (unnormalized: analog currents add directly).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Mixture kernels.
    pub fn kernels(&self) -> &[HmgKernel] {
        &self.kernels
    }

    /// Unnormalized mixture likelihood `Σₖ wₖ hₖ(x)`.
    ///
    /// Unlike a GMM density this does not integrate to one — it models the
    /// total column current of the inverter array, which is proportional to
    /// the map likelihood. Particle-filter weights are normalized
    /// downstream, so only relative values matter.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the model dimension.
    pub fn likelihood(&self, x: &[f64]) -> f64 {
        // Fused multiply-add accumulation, mirrored exactly by the
        // 4-wide lane path so batch and scalar evaluation agree bitwise.
        let mut total = 0.0;
        for (w, k) in self.weights.iter().zip(&self.kernels) {
            total = w.mul_add(k.eval(x), total);
        }
        total
    }

    /// Natural log of [`Self::likelihood`], floored to stay finite.
    pub fn log_likelihood(&self, x: &[f64]) -> f64 {
        self.likelihood(x).max(1e-300).ln()
    }

    /// Log-likelihood of four points at once through explicit f64 lanes.
    ///
    /// `flat` holds exactly four consecutive row-major points (`4 × dim`
    /// doubles). Each lane applies the operation sequence of the scalar
    /// [`Self::log_likelihood`] verbatim — same `exp_fast` axis factors,
    /// same `1e-300` floors, same fused multiply-add mixture
    /// accumulation — so every lane result is bit-identical to scoring
    /// that point alone. This is what lets the batched
    /// [`LikelihoodBackend`] impl group points freely without observable
    /// effect.
    fn log_likelihood4(&self, flat: &[f64], xs4: &mut Vec<F64x4>) -> [f64; LANES] {
        let dim = self.dim();
        debug_assert_eq!(flat.len(), LANES * dim);
        // Transpose once: axis i of each of the four points, reused by
        // every kernel.
        xs4.clear();
        for i in 0..dim {
            xs4.push(F64x4::new([
                flat[i],
                flat[dim + i],
                flat[2 * dim + i],
                flat[3 * dim + i],
            ]));
        }
        let mut total = F64x4::splat(0.0);
        for (w, k) in self.weights.iter().zip(&self.kernels) {
            let peak = F64x4::splat(k.amplitude * dim as f64);
            let mut inv_sum = F64x4::splat(0.0);
            for i in 0..dim {
                let z = (xs4[i] - F64x4::splat(k.means[i])) / F64x4::splat(k.sigmas[i]);
                let g = (F64x4::splat(-0.5) * z * z).exp().max(F64x4::splat(1e-300));
                inv_sum = inv_sum + F64x4::splat(1.0) / g;
            }
            total = F64x4::splat(*w).mul_add(peak / inv_sum, total);
        }
        let mut out = [0.0; LANES];
        for (lane, o) in out.iter_mut().enumerate() {
            *o = total.lane(lane).max(1e-300).ln();
        }
        out
    }

    /// [`Self::log_likelihood`] restricted to the candidate kernels of a
    /// pruned tile (ascending ids): the identical per-kernel math and
    /// fused accumulation over fewer terms. The dropped terms are bounded
    /// below the survivors by the prune margin, so the result differs
    /// from the full evaluation by at most
    /// [`crate::prune::PRUNE_EPSILON`] nats.
    pub fn log_likelihood_subset(&self, x: &[f64], cands: &[u32]) -> f64 {
        let mut total = 0.0;
        for &j in cands {
            let j = j as usize;
            total = self.weights[j].mul_add(self.kernels[j].eval(x), total);
        }
        total.max(1e-300).ln()
    }

    /// [`Self::log_likelihood4`] restricted to candidate kernels — the
    /// lane path of [`Self::log_likelihood_subset`], bit-identical to it
    /// per point.
    fn log_likelihood4_subset(
        &self,
        flat: &[f64],
        cands: &[u32],
        xs4: &mut Vec<F64x4>,
    ) -> [f64; LANES] {
        let dim = self.dim();
        debug_assert_eq!(flat.len(), LANES * dim);
        xs4.clear();
        for i in 0..dim {
            xs4.push(F64x4::new([
                flat[i],
                flat[dim + i],
                flat[2 * dim + i],
                flat[3 * dim + i],
            ]));
        }
        let mut total = F64x4::splat(0.0);
        for &j in cands {
            let j = j as usize;
            let (w, k) = (&self.weights[j], &self.kernels[j]);
            let peak = F64x4::splat(k.amplitude * dim as f64);
            let mut inv_sum = F64x4::splat(0.0);
            for i in 0..dim {
                let z = (xs4[i] - F64x4::splat(k.means[i])) / F64x4::splat(k.sigmas[i]);
                let g = (F64x4::splat(-0.5) * z * z).exp().max(F64x4::splat(1e-300));
                inv_sum = inv_sum + F64x4::splat(1.0) / g;
            }
            total = F64x4::splat(*w).mul_add(peak / inv_sum, total);
        }
        let mut out = [0.0; LANES];
        for (lane, o) in out.iter_mut().enumerate() {
            *o = total.lane(lane).max(1e-300).ln();
        }
        out
    }
}

impl HmgmModel {
    /// Batch log-likelihood under an explicit [`par::ChunkPolicy`].
    ///
    /// Identical bits to [`LikelihoodBackend::log_likelihood_into`] for
    /// every `(chunk_len, workers)` pair — each point's math is
    /// self-contained, so chunk boundaries and thread assignment are
    /// unobservable in the output. Exposed so the thread-sweep bench can
    /// re-tune [`par::MIN_CHUNK`] against the production kernel.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or if `out.len() != batch.len()`.
    pub fn log_likelihood_into_policy(
        &mut self,
        batch: &PointBatch,
        out: &mut [f64],
        policy: par::ChunkPolicy,
    ) {
        check_batch_shape(HmgmModel::dim(self), batch, out);
        let n = batch.len();
        if policy.is_single_chunk(n) {
            // Sequential production path: evaluate the whole batch inline
            // through the struct-held scratch — allocation-free once the
            // buffers have grown to the model dimension.
            let mut scratch = std::mem::take(&mut self.scratch);
            match self.prune.as_ref() {
                Some(index) => self.eval_range_pruned(index, batch, n, 0, out, &mut scratch),
                None => self.eval_range(batch, 0, out, &mut scratch),
            }
            self.scratch = scratch;
            return;
        }
        let model = &*self;
        if let Some(index) = self.prune.as_ref() {
            par::for_each_chunk_policy(policy, out, |start, chunk| {
                // Threaded chunk: worker-local scratch (allocates by
                // design — thread spawning already does). Bit-identical
                // to the inline path: scratch capacity is unobservable.
                // lint: allow(hot-path-alloc) threaded chunk closures own their scratch
                let mut scratch = HmgScratch::default();
                model.eval_range_pruned(index, batch, n, start, chunk, &mut scratch);
            });
            return;
        }
        par::for_each_chunk_policy(policy, out, |start, chunk| {
            // lint: allow(hot-path-alloc) threaded chunk closures own their scratch
            let mut scratch = HmgScratch::default();
            model.eval_range(batch, start, chunk, &mut scratch);
        });
    }

    /// Pruned evaluation of `chunk` (the output slice anchored at batch
    /// index `start`): fixed tiles anchored at absolute batch indices
    /// share one candidate query, so the pruning decision — and therefore
    /// the output bits — cannot depend on chunk boundaries or thread
    /// assignment.
    fn eval_range_pruned(
        &self,
        index: &PruneIndex,
        batch: &PointBatch,
        n: usize,
        start: usize,
        chunk: &mut [f64],
        s: &mut HmgScratch,
    ) {
        let end = start + chunk.len();
        let mut pos = start;
        while pos < end {
            let tile_lo = (pos / PRUNE_TILE) * PRUNE_TILE;
            let tile_hi = (tile_lo + PRUNE_TILE).min(n);
            let piece_end = end.min(tile_hi);
            let tile = batch.flat_range(tile_lo, tile_hi);
            let cands = index.candidates_for_points(tile, &[], &mut s.prune);
            let mut offset = pos;
            match cands {
                Some(cands) => {
                    while offset + LANES <= piece_end {
                        let flat = batch.flat_range(offset, offset + LANES);
                        chunk[offset - start..offset - start + LANES]
                            .copy_from_slice(&self.log_likelihood4_subset(flat, cands, &mut s.xs4));
                        offset += LANES;
                    }
                    for i in offset..piece_end {
                        chunk[i - start] = self.log_likelihood_subset(batch.point(i), cands);
                    }
                }
                // Non-finite tile: full evaluation, bit-identical
                // to the unpruned path for these points.
                None => {
                    while offset + LANES <= piece_end {
                        let flat = batch.flat_range(offset, offset + LANES);
                        chunk[offset - start..offset - start + LANES]
                            .copy_from_slice(&self.log_likelihood4(flat, &mut s.xs4));
                        offset += LANES;
                    }
                    for i in offset..piece_end {
                        chunk[i - start] = self.log_likelihood(batch.point(i));
                    }
                }
            }
            pos = piece_end;
        }
    }

    /// Unpruned evaluation of `chunk` (anchored at batch index `start`):
    /// 4-wide body plus scalar remainder tail; lane math is per-point
    /// identical to [`Self::log_likelihood`], so any chunk boundary or
    /// grouping yields the same bits.
    fn eval_range(&self, batch: &PointBatch, start: usize, chunk: &mut [f64], s: &mut HmgScratch) {
        let mut offset = 0;
        while offset + LANES <= chunk.len() {
            let flat = batch.flat_range(start + offset, start + offset + LANES);
            chunk[offset..offset + LANES].copy_from_slice(&self.log_likelihood4(flat, &mut s.xs4));
            offset += LANES;
        }
        for (i, o) in chunk.iter_mut().enumerate().skip(offset) {
            *o = self.log_likelihood(batch.point(start + i));
        }
    }
}

impl LikelihoodBackend for HmgmModel {
    fn dim(&self) -> usize {
        HmgmModel::dim(self)
    }

    fn log_likelihood_into(&mut self, batch: &PointBatch, out: &mut [f64]) {
        self.log_likelihood_into_policy(batch, out, par::ChunkPolicy::auto());
    }
}

/// Configuration of the HMGM fitter.
#[derive(Debug, Clone, PartialEq)]
pub struct HmgmFitConfig {
    /// Configuration of the GMM warm start.
    pub gmm: FitConfig,
    /// Responsibility-reweighting refinement rounds on the HMG family.
    pub refine_iters: usize,
    /// Sigma floor, matching the narrowest kernel the hardware can
    /// realize.
    pub sigma_floor: f64,
    /// Optional sigma ceiling imposed by the device's conduction window
    /// (`None` = unconstrained).
    pub sigma_ceiling: Option<f64>,
    /// Optional per-axis floors overriding `sigma_floor` (voltage scales
    /// differ per axis on real arrays).
    pub sigma_floor_axes: Option<Vec<f64>>,
    /// Optional per-axis ceilings overriding `sigma_ceiling`.
    pub sigma_ceiling_axes: Option<Vec<f64>>,
}

impl Default for HmgmFitConfig {
    fn default() -> Self {
        Self {
            gmm: FitConfig::default(),
            refine_iters: 10,
            sigma_floor: 1e-3,
            sigma_ceiling: None,
            sigma_floor_axes: None,
            sigma_ceiling_axes: None,
        }
    }
}

/// Fits an HMG mixture to data: diagonal-GMM warm start followed by
/// responsibility reweighting in the HMG family.
///
/// The refinement computes responsibilities with the HMG kernels themselves
/// (`r_nk ∝ w_k h_k(x_n)`) and re-estimates means/sigmas/weights from them —
/// the approximate EM used because HMG kernels lack a closed-form
/// normalizer. Hardware constraints enter through the sigma floor/ceiling.
///
/// # Errors
///
/// Propagates warm-start errors.
pub fn fit_hmgm<R: Rng64 + ?Sized>(
    points: &[Vec<f64>],
    k: usize,
    config: &HmgmFitConfig,
    rng: &mut R,
) -> Result<HmgmModel> {
    let dim = check_dims(points)?;
    let gmm = fit_diag_gmm(points, k, &config.gmm, rng)?;
    let sds = gmm
        .diag_std_devs()
        .expect("fit_diag_gmm returns diagonal models");

    let clamp_sigma = |s: f64, axis: usize| {
        let floor = config
            .sigma_floor_axes
            .as_ref()
            .and_then(|f| f.get(axis).copied())
            .unwrap_or(config.sigma_floor);
        let ceiling = config
            .sigma_ceiling_axes
            .as_ref()
            .and_then(|c| c.get(axis).copied())
            .or(config.sigma_ceiling);
        let s = s.max(floor);
        match ceiling {
            Some(c) => s.min(c.max(floor)),
            None => s,
        }
    };

    let mut weights = gmm.weights().to_vec();
    let mut means = gmm.means().to_vec();
    let mut sigmas: Vec<Vec<f64>> = sds
        .iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .map(|(axis, &s)| clamp_sigma(s, axis))
                .collect()
        })
        .collect();

    let n = points.len();
    for _round in 0..config.refine_iters {
        let kernels: Vec<HmgKernel> = (0..k)
            .map(|j| {
                HmgKernel::new(means[j].clone(), sigmas[j].clone(), 1.0)
                    .expect("parameters kept valid by clamping")
            })
            .collect();
        // Responsibilities under the HMG kernels.
        let mut resp = vec![vec![0.0f64; k]; n];
        for (i, p) in points.iter().enumerate() {
            let mut total = 0.0;
            for j in 0..k {
                let v = weights[j] * kernels[j].eval(p);
                resp[i][j] = v;
                total += v;
            }
            if total > 0.0 {
                for j in 0..k {
                    resp[i][j] /= total;
                }
            } else {
                // Point far from every kernel: uniform responsibility.
                for j in 0..k {
                    resp[i][j] = 1.0 / k as f64;
                }
            }
        }
        // Reweighted parameter updates.
        for j in 0..k {
            let nk: f64 = (0..n).map(|i| resp[i][j]).sum();
            if nk < 1e-9 {
                continue; // keep the previous parameters for starved kernels
            }
            weights[j] = nk / n as f64;
            for d in 0..dim {
                // lint: reduction-order point-index order, matching the scalar EM update
                let mu: f64 = points
                    .iter()
                    .enumerate()
                    .map(|(i, p)| resp[i][j] * p[d])
                    .sum::<f64>()
                    / nk;
                means[j][d] = mu;
                // lint: reduction-order point-index order, matching the scalar EM update
                let var: f64 = points
                    .iter()
                    .enumerate()
                    .map(|(i, p)| resp[i][j] * (p[d] - mu) * (p[d] - mu))
                    .sum::<f64>()
                    / nk;
                sigmas[j][d] = clamp_sigma(var.sqrt(), d);
            }
        }
    }

    let kernels: Vec<HmgKernel> = (0..k)
        .map(|j| {
            HmgKernel::new(means[j].clone(), sigmas[j].clone(), 1.0)
                .expect("parameters kept valid by clamping")
        })
        .collect();
    HmgmModel::new(weights, kernels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_math::approx_eq;
    use navicim_math::rng::{Pcg32, SampleExt};

    fn kernel2d() -> HmgKernel {
        HmgKernel::new(vec![0.0, 0.0], vec![1.0, 1.0], 1.0).unwrap()
    }

    #[test]
    fn kernel_validation() {
        assert!(HmgKernel::new(vec![], vec![], 1.0).is_err());
        assert!(HmgKernel::new(vec![0.0], vec![0.0], 1.0).is_err());
        assert!(HmgKernel::new(vec![0.0], vec![1.0], 0.0).is_err());
        assert!(HmgKernel::new(vec![0.0], vec![1.0, 2.0], 1.0).is_err());
    }

    #[test]
    fn peak_at_mean_equals_amplitude() {
        let k = HmgKernel::new(vec![1.0, -2.0, 0.5], vec![0.3, 0.4, 0.5], 3.5).unwrap();
        assert!(approx_eq(k.eval(&[1.0, -2.0, 0.5]), 3.5, 1e-12));
    }

    #[test]
    fn kernel_decays_from_mean() {
        let k = kernel2d();
        let peak = k.eval(&[0.0, 0.0]);
        assert!(k.eval(&[0.5, 0.0]) < peak);
        assert!(k.eval(&[1.0, 1.0]) < k.eval(&[0.5, 0.5]));
    }

    #[test]
    fn hmg_equals_gaussian_in_1d() {
        // With a single axis, harmonic mean of one factor is the factor.
        let k = HmgKernel::new(vec![0.0], vec![1.0], 1.0).unwrap();
        for &x in &[-2.0, -0.5, 0.0, 1.0, 2.5] {
            let g = f64::exp(-0.5 * x * x);
            assert!(approx_eq(k.eval(&[x]), g, 1e-12));
        }
    }

    #[test]
    fn hmg_tails_heavier_than_product() {
        // h = 2 g₁g₂/(g₁+g₂) and p = g₁g₂, so h/p = 2/(g₁+g₂) ≥ 1: the HMG
        // tail always sits above the product-Gaussian tail, and the excess
        // is largest on the diagonal where both factors are small.
        let k = kernel2d();
        let axis = [3.0, 0.0];
        let diag = [3.0 / 2f64.sqrt(), 3.0 / 2f64.sqrt()];
        assert!(k.eval(&axis) > k.eval_product(&axis));
        assert!(k.eval(&diag) > k.eval_product(&diag));
        let ratio_axis = k.eval(&axis) / k.eval_product(&axis);
        let ratio_diag = k.eval(&diag) / k.eval_product(&diag);
        assert!(ratio_diag > ratio_axis);
    }

    #[test]
    fn rectilinear_contours() {
        // The harmonic mean acts like a min: {h > L} ≈ {|x| < r} ∩ {|y| < r},
        // a rectangle. Its iso-contours therefore bulge toward the corners —
        // the diagonal crossing sits up to √2 farther out than the axis
        // crossing, unlike a Gaussian's circular contour (equal radii).
        // This is the paper's Fig. 2(c,d) "rectilinear tails" observation.
        let k = kernel2d();
        let level = k.eval(&[3.0, 0.0]); // contour through (3, 0)
                                         // Find the diagonal crossing of the same level.
        let mut r = 0.0;
        while k.eval(&[r / 2f64.sqrt(), r / 2f64.sqrt()]) > level {
            r += 0.01;
        }
        assert!(
            r > 3.0 * 1.2 && r < 3.0 * 2f64.sqrt(),
            "diagonal crossing {r} should push out toward the square corner"
        );
        // The product (true Gaussian) contour crosses the diagonal at the
        // same radius as the axis — circular.
        let plevel = k.eval_product(&[3.0, 0.0]);
        let mut rp = 0.0;
        while k.eval_product(&[rp / 2f64.sqrt(), rp / 2f64.sqrt()]) > plevel {
            rp += 0.01;
        }
        assert!((rp - 3.0).abs() < 0.05, "gaussian contour radius {rp}");
    }

    #[test]
    fn mixture_likelihood_sums_components() {
        let k1 = HmgKernel::new(vec![0.0], vec![1.0], 1.0).unwrap();
        let k2 = HmgKernel::new(vec![5.0], vec![1.0], 1.0).unwrap();
        let m = HmgmModel::new(vec![2.0, 1.0], vec![k1.clone(), k2.clone()]).unwrap();
        let x = [1.0];
        assert!(approx_eq(
            m.likelihood(&x),
            2.0 * k1.eval(&x) + k2.eval(&x),
            1e-12
        ));
    }

    #[test]
    fn mixture_validation() {
        let k1 = HmgKernel::new(vec![0.0], vec![1.0], 1.0).unwrap();
        let k2 = HmgKernel::new(vec![0.0, 1.0], vec![1.0, 1.0], 1.0).unwrap();
        assert!(HmgmModel::new(vec![1.0], vec![]).is_err());
        assert!(HmgmModel::new(vec![-1.0], vec![k1.clone()]).is_err());
        assert!(HmgmModel::new(vec![1.0, 1.0], vec![k1, k2]).is_err());
    }

    #[test]
    fn fit_recovers_blob_locations() {
        let mut rng = Pcg32::seed_from_u64(1);
        let mut pts = Vec::new();
        for _ in 0..300 {
            pts.push(vec![
                rng.sample_normal(-1.0, 0.2),
                rng.sample_normal(0.0, 0.2),
            ]);
            pts.push(vec![
                rng.sample_normal(2.0, 0.3),
                rng.sample_normal(3.0, 0.3),
            ]);
        }
        let mut rng2 = Pcg32::seed_from_u64(2);
        let model = fit_hmgm(&pts, 2, &HmgmFitConfig::default(), &mut rng2).unwrap();
        let mut means: Vec<&[f64]> = model.kernels().iter().map(|k| k.means()).collect();
        means.sort_by(|a, b| a[0].partial_cmp(&b[0]).unwrap());
        assert!((means[0][0] + 1.0).abs() < 0.2, "{means:?}");
        assert!((means[1][0] - 2.0).abs() < 0.2, "{means:?}");
        // Likelihood is highest at blob centers.
        assert!(model.likelihood(&[-1.0, 0.0]) > model.likelihood(&[0.5, 1.5]));
        assert!(model.likelihood(&[2.0, 3.0]) > model.likelihood(&[0.5, 1.5]));
    }

    #[test]
    fn sigma_ceiling_respected() {
        let mut rng = Pcg32::seed_from_u64(3);
        let pts: Vec<Vec<f64>> = (0..200)
            .map(|_| vec![rng.sample_normal(0.0, 2.0)])
            .collect();
        let config = HmgmFitConfig {
            sigma_ceiling: Some(0.5),
            ..HmgmFitConfig::default()
        };
        let mut rng2 = Pcg32::seed_from_u64(4);
        let model = fit_hmgm(&pts, 2, &config, &mut rng2).unwrap();
        for k in model.kernels() {
            for &s in k.sigmas() {
                assert!(s <= 0.5 + 1e-12);
            }
        }
    }

    #[test]
    fn log_likelihood_finite_everywhere() {
        let k = kernel2d();
        let m = HmgmModel::new(vec![1.0], vec![k]).unwrap();
        assert!(m.log_likelihood(&[100.0, -100.0]).is_finite());
    }

    #[test]
    fn policy_batch_path_is_chunking_invariant() {
        let k1 = HmgKernel::new(vec![0.0, 0.0], vec![1.0, 1.0], 1.0).unwrap();
        let k2 = HmgKernel::new(vec![2.0, -1.0], vec![0.5, 0.8], 2.0).unwrap();
        let mut m = HmgmModel::new(vec![2.0, 1.0], vec![k1, k2]).unwrap();
        let mut rng = Pcg32::seed_from_u64(5);
        let mut batch = PointBatch::with_capacity(2, 11);
        for _ in 0..11 {
            batch.push(&[rng.sample_normal(0.5, 1.5), rng.sample_normal(-0.5, 1.5)]);
        }
        let mut auto = vec![0.0; 11];
        m.log_likelihood_into(&batch, &mut auto);
        for policy in [par::ChunkPolicy::exact(3, 4), par::ChunkPolicy::exact(1, 2)] {
            let mut out = vec![0.0; 11];
            m.log_likelihood_into_policy(&batch, &mut out, policy);
            assert_eq!(out, auto);
        }
    }
}
