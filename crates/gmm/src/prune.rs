//! Spatially-indexed component pruning for mixture likelihood kernels.
//!
//! Every batch likelihood path is O(points × components), yet a localized
//! particle cloud overlaps a handful of map components at most — the rest
//! contribute terms that are exponentially negligible. This module builds
//! a uniform grid over the component-mean bounding box once per model
//! (`PruneIndex`), storing per-cell candidate lists derived from
//! *conservative* per-component log-contribution bounds. Batch paths
//! compute the axis-aligned bounding box of a fixed tile of query points,
//! intersect it with the grid, and evaluate only the surviving candidates.
//!
//! # The epsilon gate
//!
//! A component `k` is dropped for a query AABB only when its log-term
//! upper bound sits more than `margin = ln(K/PRUNE_EPSILON) + 1` below
//! the best lower bound over the candidate set. The component attaining
//! that lower bound is always kept and dominates every dropped term by at
//! least `e^margin` at *every* point of the AABB, so the additive
//! log-likelihood error of a pruned evaluation is at most
//! `ln(1 + K·e^{-margin}) ≤ PRUNE_EPSILON/e` nats. This is the same
//! documented-tolerance contract style as `EXP_FAST_MAX_ULP`: the gate is
//! explicit, conservative and property-tested, and pruning defaults
//! **off** with the off mode bit-identical by construction (the full
//! evaluation paths are untouched).
//!
//! # Tiling
//!
//! Queries are grouped into fixed tiles of [`PRUNE_TILE`] consecutive
//! batch points, anchored at absolute batch indices (or, for coalesced
//! multi-session batches, at each session's segment start). Because a
//! tile's AABB is computed over the *full* tile regardless of chunk
//! boundaries, the pruning decision is invariant under every
//! `par::ChunkPolicy` — chunking stays unobservable in the output bits,
//! pruned or not. A tile containing any non-finite coordinate falls back
//! to the full component set, so NaN/∞ propagation matches the unpruned
//! path exactly.

use crate::gaussian::{Covariance, Gmm};
use crate::hmg::{HmgKernel, HmgmModel};
use navicim_math::stats::LN_2PI;

/// Additive log-likelihood tolerance of a pruned evaluation, in nats.
///
/// The prune margin is derived from this bound (see the module docs), so
/// pruned and full evaluations agree to well below any downstream
/// consumer's resolution — particle weights are normalized ratios of
/// exponentials, where 1e-6 nats is a relative weight change of ~1e-6.
pub const PRUNE_EPSILON: f64 = 1e-6;

/// Number of consecutive batch points sharing one pruning decision.
///
/// Small enough that a localized particle cloud's tiles stay tight,
/// large enough that the per-tile AABB + grid query cost (O(dim·TILE +
/// K)) is negligible against the evaluations it saves.
pub const PRUNE_TILE: usize = 256;

/// Cap on per-axis grid resolution (cells_per_axis is clamped to it).
const MAX_CELLS_PER_AXIS: usize = 32;

/// Cap on total grid cells across all axes.
const MAX_TOTAL_CELLS: usize = 32_768;

/// `-ln(1e-300)`: the largest per-axis log-deficit the HMG evaluation
/// can realize before its `1e-300` factor floor saturates. Bounds are
/// capped here so they stay conservative against the floored kernel.
const HMG_AXIS_CAP: f64 = 690.775_527_898_213_7;

/// Pruning knob threaded from `LocalizerConfig` down to every kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PruneConfig {
    /// Master switch; `false` (the default) leaves every evaluation path
    /// untouched and bit-identical to previous releases.
    pub enabled: bool,
    /// Grid resolution per axis (clamped to keep the cell table small).
    pub cells_per_axis: usize,
}

impl Default for PruneConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            cells_per_axis: 8,
        }
    }
}

impl PruneConfig {
    /// An enabled config with the default grid resolution.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }
}

/// The per-component bound model behind a [`PruneIndex`].
#[derive(Debug, Clone, PartialEq)]
enum BoundModel {
    /// Diagonal GMM: log term `t_k(x) = c_k + Σᵢ nhivᵢ·(xᵢ−μᵢ)²`, exactly
    /// the hoisted form the digital evaluation plan computes.
    DiagGauss {
        /// `ln w_k − Σᵢ ln σ_{k,i} − d/2·ln 2π` per component.
        consts: Vec<f64>,
        /// `−1/(2σ²)` per component × axis, flattened row-major.
        neg_half_inv_vars: Vec<f64>,
    },
    /// HMG mixture: log term `ln(w_k·a_k·d) − ln Σᵢ exp(zᵢ²/2)` with
    /// `zᵢ = (xᵢ−μᵢ)/σᵢ`, bounded through per-axis z-extremes.
    Hmg {
        /// `ln(w_k · amplitude_k · d)` per component.
        log_peaks: Vec<f64>,
        /// `1/σ` per component × axis, flattened row-major.
        inv_sigmas: Vec<f64>,
    },
}

/// Reusable query-side scratch for [`PruneIndex::candidates_for_points`]
/// (AABB, candidate bitset, upper-bound staging). One per worker chunk,
/// mirroring the existing per-chunk `terms4`/`xs4` idiom.
#[derive(Debug, Clone, Default)]
pub struct PruneScratch {
    lo: Vec<f64>,
    hi: Vec<f64>,
    seen: Vec<u64>,
    span: Vec<(usize, usize)>,
    idx: Vec<usize>,
    union: Vec<u32>,
    cands: Vec<u32>,
    uppers: Vec<f64>,
}

/// Uniform spatial grid over the component means with per-cell
/// conservative candidate lists. Built once at backend construction;
/// shared read-only by every chunk of every batch.
#[derive(Debug, Clone, PartialEq)]
pub struct PruneIndex {
    dim: usize,
    k: usize,
    /// Grid origin per axis (min component mean).
    grid_lo: Vec<f64>,
    /// Cell width per axis (> 0).
    cell_w: Vec<f64>,
    /// Cells per axis.
    cells: usize,
    /// Component means, flattened row-major (`k × dim`).
    means: Vec<f64>,
    /// Candidate component ids per cell, ascending, row-major cell order.
    cell_candidates: Vec<Vec<u32>>,
    /// The epsilon-derived log-domain prune margin (see module docs).
    margin: f64,
    model: BoundModel,
}

impl PruneIndex {
    /// Builds an index over a diagonal [`Gmm`]'s components.
    ///
    /// Returns `None` for full-covariance models (no bound model — the
    /// full evaluation path is used unconditionally) and for disabled
    /// configs.
    pub fn for_diag_gmm(gmm: &Gmm, config: PruneConfig) -> Option<Self> {
        if !config.enabled {
            return None;
        }
        let Covariance::Diagonal(vars) = gmm.covariance() else {
            return None;
        };
        let dim = gmm.dim();
        let k = gmm.num_components();
        let mut consts = Vec::with_capacity(k);
        let mut nhiv = Vec::with_capacity(k * dim);
        let mut means = Vec::with_capacity(k * dim);
        for (j, vj) in vars.iter().enumerate() {
            // Exactly the DiagPlan hoisting, so bounds and realized terms
            // share one formula.
            let mut c = gmm.weights()[j].max(1e-300).ln() - 0.5 * dim as f64 * LN_2PI;
            for &v in vj {
                c -= 0.5 * v.ln();
                nhiv.push(-0.5 / v);
            }
            consts.push(c);
            means.extend_from_slice(&gmm.means()[j]);
        }
        Some(Self::build(
            dim,
            k,
            means,
            BoundModel::DiagGauss {
                consts,
                neg_half_inv_vars: nhiv,
            },
            config,
            Self::digital_margin(k),
        ))
    }

    /// The margin (nats) guaranteeing the documented additive
    /// [`PRUNE_EPSILON`] bound on exact digital evaluation:
    /// `ln(K/ε)` for the summed dropped terms plus one nat of slack
    /// covering the `exp_fast`/`f64::exp` ulp gap between bound math and
    /// realized terms.
    pub fn digital_margin(k: usize) -> f64 {
        (k as f64 / PRUNE_EPSILON).ln() + 1.0
    }

    /// Builds an index over an [`HmgmModel`]'s kernels.
    pub fn for_hmgm(model: &HmgmModel, config: PruneConfig) -> Option<Self> {
        Self::for_hmg_parts(model.weights(), model.kernels(), config, 0.0)
    }

    /// Builds an HMG index from explicit weights (the CIM engine passes
    /// per-column replica counts, the actual analog current multipliers)
    /// plus an extra safety margin in nats absorbing device-side
    /// distortion (process variation, DAC quantization, kernel shape
    /// mismatch) between the mathematical bound and the column current.
    pub fn for_hmg_parts(
        weights: &[f64],
        kernels: &[HmgKernel],
        config: PruneConfig,
        extra_margin: f64,
    ) -> Option<Self> {
        let k = kernels.len();
        Self::for_hmg_parts_with_margin(
            weights,
            kernels,
            config,
            Self::digital_margin(k) + extra_margin.max(0.0),
        )
    }

    /// [`Self::for_hmg_parts`] with an explicit *total* margin in nats,
    /// replacing the [`PRUNE_EPSILON`]-derived digital margin entirely.
    ///
    /// The CIM engine uses this: its outputs are log-ADC-quantized at a
    /// ~0.08-nat step, so gating tuned to `ln K` head-room plus a device
    /// slack far below the digital `ln(K/ε)` keeps dropped-column error
    /// orders of magnitude under ADC visibility while gating aggressively
    /// enough to matter on device-constrained sigma floors. The margin is
    /// floored at `ln K + 1` so the summed dropped terms always stay at
    /// least `1/e` nats below the realized maximum.
    pub fn for_hmg_parts_with_margin(
        weights: &[f64],
        kernels: &[HmgKernel],
        config: PruneConfig,
        margin: f64,
    ) -> Option<Self> {
        if !config.enabled || weights.is_empty() || weights.len() != kernels.len() {
            return None;
        }
        let dim = kernels[0].dim();
        let k = kernels.len();
        let margin = margin.max((k as f64).ln() + 1.0);
        let mut log_peaks = Vec::with_capacity(k);
        let mut inv_sigmas = Vec::with_capacity(k * dim);
        let mut means = Vec::with_capacity(k * dim);
        for (w, kern) in weights.iter().zip(kernels) {
            log_peaks.push((w * kern.amplitude() * dim as f64).max(1e-300).ln());
            for (&m, &s) in kern.means().iter().zip(kern.sigmas()) {
                means.push(m);
                inv_sigmas.push(1.0 / s);
            }
        }
        Some(Self::build(
            dim,
            k,
            means,
            BoundModel::Hmg {
                log_peaks,
                inv_sigmas,
            },
            config,
            margin,
        ))
    }

    fn build(
        dim: usize,
        k: usize,
        means: Vec<f64>,
        model: BoundModel,
        config: PruneConfig,
        margin: f64,
    ) -> Self {
        // Grid over the component-mean bounding box; degenerate axes get
        // an artificial width so every cell stays well-formed.
        let mut grid_lo = vec![f64::INFINITY; dim];
        let mut grid_hi = vec![f64::NEG_INFINITY; dim];
        for j in 0..k {
            for i in 0..dim {
                grid_lo[i] = grid_lo[i].min(means[j * dim + i]);
                grid_hi[i] = grid_hi[i].max(means[j * dim + i]);
            }
        }
        let mut cells = config.cells_per_axis.clamp(1, MAX_CELLS_PER_AXIS);
        while cells > 1 && cells.pow(dim as u32) > MAX_TOTAL_CELLS {
            cells -= 1;
        }
        let cell_w: Vec<f64> = (0..dim)
            .map(|i| ((grid_hi[i] - grid_lo[i]).max(1e-9)) / cells as f64)
            .collect();

        let index = Self {
            dim,
            k,
            grid_lo,
            cell_w,
            cells,
            means,
            cell_candidates: Vec::new(),
            margin,
            model,
        };
        index.with_cell_lists()
    }

    /// Fills the per-cell candidate lists by running the margin rule on
    /// every cell's AABB. Edge cells extend to ±∞ so any query point —
    /// also ones outside the mean bounding box — maps to a valid cell
    /// with sound bounds.
    fn with_cell_lists(mut self) -> Self {
        let total = self.cells.pow(self.dim as u32);
        let mut lists = Vec::with_capacity(total);
        let mut lo = vec![0.0; self.dim];
        let mut hi = vec![0.0; self.dim];
        let mut idx = vec![0usize; self.dim];
        for _ in 0..total {
            for i in 0..self.dim {
                lo[i] = if idx[i] == 0 {
                    f64::NEG_INFINITY
                } else {
                    self.grid_lo[i] + idx[i] as f64 * self.cell_w[i]
                };
                hi[i] = if idx[i] + 1 == self.cells {
                    f64::INFINITY
                } else {
                    self.grid_lo[i] + (idx[i] + 1) as f64 * self.cell_w[i]
                };
            }
            lists.push(self.candidates_for_aabb(&lo, &hi, None));
            // Row-major multi-index increment.
            for i in (0..self.dim).rev() {
                idx[i] += 1;
                if idx[i] < self.cells {
                    break;
                }
                idx[i] = 0;
            }
        }
        self.cell_candidates = lists;
        self
    }

    /// Number of components indexed.
    pub fn num_components(&self) -> usize {
        self.k
    }

    /// Index dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Upper bound of component `j`'s log term over the AABB. Attained
    /// at the in-box point nearest the mean per axis, so it is exact for
    /// boxes containing the mean.
    fn upper_bound(&self, j: usize, lo: &[f64], hi: &[f64]) -> f64 {
        let mj = &self.means[j * self.dim..(j + 1) * self.dim];
        match &self.model {
            BoundModel::DiagGauss {
                consts,
                neg_half_inv_vars,
            } => {
                let nhiv = &neg_half_inv_vars[j * self.dim..(j + 1) * self.dim];
                let mut quad = 0.0;
                for i in 0..self.dim {
                    let d = (lo[i] - mj[i]).max(mj[i] - hi[i]).max(0.0);
                    quad += nhiv[i] * d * d;
                }
                consts[j] + quad
            }
            BoundModel::Hmg {
                log_peaks,
                inv_sigmas,
            } => {
                let inv_s = &inv_sigmas[j * self.dim..(j + 1) * self.dim];
                // Smallest per-axis deficit aᵢ = zᵢ²/2 over the box →
                // smallest Σ exp(aᵢ) → largest term.
                log_peaks[j]
                    - Self::log_sum_exp_capped(self.dim, |i| {
                        let d = (lo[i] - mj[i]).max(mj[i] - hi[i]).max(0.0);
                        let z = d * inv_s[i];
                        0.5 * z * z
                    })
            }
        }
    }

    /// Lower bound of component `j`'s log term over the AABB (the value
    /// at the in-box point farthest from the mean per axis).
    fn lower_bound(&self, j: usize, lo: &[f64], hi: &[f64]) -> f64 {
        let mj = &self.means[j * self.dim..(j + 1) * self.dim];
        match &self.model {
            BoundModel::DiagGauss {
                consts,
                neg_half_inv_vars,
            } => {
                let nhiv = &neg_half_inv_vars[j * self.dim..(j + 1) * self.dim];
                let mut quad = 0.0;
                for i in 0..self.dim {
                    let d = (hi[i] - mj[i]).max(mj[i] - lo[i]).max(0.0);
                    // ±∞ extents make d·d overflow to +∞ and the product
                    // to −∞: the bound degrades gracefully to "no floor".
                    quad += nhiv[i] * (d * d);
                }
                consts[j] + quad
            }
            BoundModel::Hmg {
                log_peaks,
                inv_sigmas,
            } => {
                let inv_s = &inv_sigmas[j * self.dim..(j + 1) * self.dim];
                log_peaks[j]
                    - Self::log_sum_exp_capped(self.dim, |i| {
                        let d = (hi[i] - mj[i]).max(mj[i] - lo[i]).max(0.0);
                        let z = d * inv_s[i];
                        0.5 * z * z
                    })
            }
        }
    }

    /// `ln Σᵢ exp(aᵢ)` over per-axis deficits, each capped at the
    /// evaluation's `1e-300` factor floor so the bound tracks the
    /// floored kernel (never exponentiates raw z²/2).
    fn log_sum_exp_capped(dim: usize, a: impl Fn(usize) -> f64) -> f64 {
        let mut m = 0.0f64;
        for i in 0..dim {
            m = m.max(a(i).min(HMG_AXIS_CAP));
        }
        let mut s = 0.0;
        for i in 0..dim {
            s += (a(i).min(HMG_AXIS_CAP) - m).exp();
        }
        m + s.ln()
    }

    /// The margin rule on an explicit AABB: keep `j` iff
    /// `U_j ≥ max_i L_i − margin`, always retaining the best-upper-bound
    /// component so the survivor set is never empty. `within` restricts
    /// the scan to a pre-filtered candidate set (the cell-list union).
    fn candidates_for_aabb(&self, lo: &[f64], hi: &[f64], within: Option<&[u32]>) -> Vec<u32> {
        let mut out = Vec::new();
        let mut uppers = Vec::new();
        self.refine(lo, hi, within, &mut out, &mut uppers);
        out
    }

    fn refine(
        &self,
        lo: &[f64],
        hi: &[f64],
        within: Option<&[u32]>,
        out: &mut Vec<u32>,
        uppers: &mut Vec<f64>,
    ) {
        out.clear();
        uppers.clear();
        let mut best_lower = f64::NEG_INFINITY;
        let mut best_upper = f64::NEG_INFINITY;
        let mut best_upper_j = 0u32;
        let mut scan = |j: u32| {
            let u = self.upper_bound(j as usize, lo, hi);
            if u > best_upper {
                best_upper = u;
                best_upper_j = j;
            }
            let l = self.lower_bound(j as usize, lo, hi);
            if l > best_lower {
                best_lower = l;
            }
            out.push(j);
            uppers.push(u);
        };
        match within {
            Some(set) => set.iter().for_each(|&j| scan(j)),
            None => (0..self.k as u32).for_each(&mut scan),
        }
        let cut = best_lower - self.margin;
        let mut w = 0;
        for r in 0..out.len() {
            if uppers[r] >= cut || out[r] == best_upper_j {
                out[w] = out[r];
                w += 1;
            }
        }
        out.truncate(w);
        if out.is_empty() {
            // All bounds −∞ (possible only for degenerate zero-weight
            // models): keep the best-upper component for a deterministic,
            // non-empty survivor set.
            out.push(best_upper_j);
        }
    }

    /// Grid cell index of a coordinate on one axis.
    fn cell_of(&self, axis: usize, x: f64) -> usize {
        let r = (x - self.grid_lo[axis]) / self.cell_w[axis];
        if r.is_nan() {
            return 0;
        }
        (r.floor().max(0.0) as usize).min(self.cells - 1)
    }

    /// Candidate components for a tile of `points.len()/dim` row-major
    /// query points, optionally padded per axis (`pad` empty = none;
    /// the CIM engine pads by one DAC step to absorb input quantization).
    ///
    /// Returns `None` when any coordinate is non-finite — the caller
    /// must fall back to the full component set so NaN/∞ propagation
    /// matches the unpruned path bit for bit. Otherwise the returned
    /// slice is ascending and non-empty, and valid until the next call
    /// on the same scratch.
    pub fn candidates_for_points<'s>(
        &self,
        points: &[f64],
        pad: &[f64],
        scratch: &'s mut PruneScratch,
    ) -> Option<&'s [u32]> {
        self.candidates_for_points_clamped(points, pad, &[], scratch)
    }

    /// As [`Self::candidates_for_points`], with the tile AABB first
    /// clamped into per-axis `ranges` (empty = no clamping), *then*
    /// padded. The CIM engine clamps to each axis's world range —
    /// mirroring the DAC input clamp, which maps every query onto that
    /// window before evaluation — so far-out tiles query the cells their
    /// points actually evaluate in.
    pub fn candidates_for_points_clamped<'s>(
        &self,
        points: &[f64],
        pad: &[f64],
        ranges: &[(f64, f64)],
        scratch: &'s mut PruneScratch,
    ) -> Option<&'s [u32]> {
        debug_assert_eq!(points.len() % self.dim, 0);
        scratch.lo.clear();
        scratch.lo.resize(self.dim, f64::INFINITY);
        scratch.hi.clear();
        scratch.hi.resize(self.dim, f64::NEG_INFINITY);
        let mut finite = true;
        for p in points.chunks_exact(self.dim) {
            for (i, &x) in p.iter().enumerate() {
                finite &= x.is_finite();
                scratch.lo[i] = scratch.lo[i].min(x);
                scratch.hi[i] = scratch.hi[i].max(x);
            }
        }
        if !finite || points.is_empty() {
            return None;
        }
        if !ranges.is_empty() {
            debug_assert_eq!(ranges.len(), self.dim);
            for (i, &(r_lo, r_hi)) in ranges.iter().enumerate() {
                scratch.lo[i] = scratch.lo[i].clamp(r_lo, r_hi);
                scratch.hi[i] = scratch.hi[i].clamp(r_lo, r_hi);
            }
        }
        if !pad.is_empty() {
            debug_assert_eq!(pad.len(), self.dim);
            for i in 0..self.dim {
                scratch.lo[i] -= pad[i];
                scratch.hi[i] += pad[i];
            }
        }
        // Union of the covered cells' candidate lists via a bitset, then
        // the margin rule on the tile AABB itself. Ascending order falls
        // out of the bitset scan, keeping subset evaluation order (and
        // CIM column order) deterministic.
        let words = self.k.div_ceil(64);
        scratch.seen.clear();
        scratch.seen.resize(words, 0);
        scratch.span.clear();
        scratch.idx.clear();
        for i in 0..self.dim {
            let a = self.cell_of(i, scratch.lo[i]);
            let b = self.cell_of(i, scratch.hi[i]);
            scratch.span.push((a, b));
            scratch.idx.push(a);
        }
        let (span, idx) = (&scratch.span, &mut scratch.idx);
        loop {
            let mut cell = 0usize;
            for &j in idx.iter() {
                cell = cell * self.cells + j;
            }
            for &c in &self.cell_candidates[cell] {
                scratch.seen[c as usize / 64] |= 1u64 << (c % 64);
            }
            // Advance the multi-index over the covered cell ranges.
            let mut done = true;
            for i in (0..self.dim).rev() {
                if idx[i] < span[i].1 {
                    idx[i] += 1;
                    done = false;
                    break;
                }
                idx[i] = span[i].0;
            }
            if done {
                break;
            }
        }
        scratch.union.clear();
        for (w, &word) in scratch.seen.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                scratch.union.push((w * 64 + b) as u32);
                bits &= bits - 1;
            }
        }
        let PruneScratch {
            lo,
            hi,
            union,
            cands,
            uppers,
            ..
        } = scratch;
        self.refine(lo, hi, Some(union), cands, uppers);
        Some(&scratch.cands)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::Covariance;
    use navicim_math::rng::{Pcg32, SampleExt};

    fn spread_gmm(k: usize) -> Gmm {
        let mut rng = Pcg32::seed_from_u64(7);
        let means: Vec<Vec<f64>> = (0..k)
            .map(|_| {
                vec![
                    rng.sample_uniform(-10.0, 10.0),
                    rng.sample_uniform(-10.0, 10.0),
                ]
            })
            .collect();
        let vars = vec![vec![0.2, 0.3]; k];
        Gmm::new(vec![1.0 / k as f64; k], means, Covariance::Diagonal(vars)).unwrap()
    }

    fn spread_hmgm(k: usize) -> HmgmModel {
        let mut rng = Pcg32::seed_from_u64(8);
        let kernels: Vec<HmgKernel> = (0..k)
            .map(|_| {
                HmgKernel::new(
                    vec![
                        rng.sample_uniform(-10.0, 10.0),
                        rng.sample_uniform(-10.0, 10.0),
                    ],
                    vec![0.4, 0.5],
                    1.0,
                )
                .unwrap()
            })
            .collect();
        HmgmModel::new(vec![1.0; k], kernels).unwrap()
    }

    #[test]
    fn disabled_config_builds_nothing() {
        let gmm = spread_gmm(8);
        assert!(PruneIndex::for_diag_gmm(&gmm, PruneConfig::default()).is_none());
        let hm = spread_hmgm(8);
        assert!(PruneIndex::for_hmgm(&hm, PruneConfig::default()).is_none());
    }

    #[test]
    fn bounds_are_conservative_gmm() {
        let gmm = spread_gmm(16);
        let index = PruneIndex::for_diag_gmm(&gmm, PruneConfig::enabled()).unwrap();
        let plan = gmm.eval_plan();
        let mut rng = Pcg32::seed_from_u64(9);
        let mut terms = Vec::new();
        for _ in 0..50 {
            let cx = rng.sample_uniform(-11.0, 11.0);
            let cy = rng.sample_uniform(-11.0, 11.0);
            let (lo, hi) = ([cx - 0.7, cy - 0.4], [cx + 0.7, cy + 0.4]);
            for _ in 0..20 {
                let x = [
                    rng.sample_uniform(lo[0], hi[0]),
                    rng.sample_uniform(lo[1], hi[1]),
                ];
                plan.log_pdf(&x, &mut terms);
                for j in 0..gmm.num_components() {
                    let u = index.upper_bound(j, &lo, &hi);
                    let l = index.lower_bound(j, &lo, &hi);
                    assert!(
                        terms[j] <= u + 1e-9 && terms[j] >= l - 1e-9,
                        "component {j}: term {} outside [{l}, {u}]",
                        terms[j]
                    );
                }
            }
        }
    }

    #[test]
    fn bounds_are_conservative_hmg() {
        let model = spread_hmgm(16);
        let index = PruneIndex::for_hmgm(&model, PruneConfig::enabled()).unwrap();
        let mut rng = Pcg32::seed_from_u64(10);
        for _ in 0..50 {
            let cx = rng.sample_uniform(-11.0, 11.0);
            let cy = rng.sample_uniform(-11.0, 11.0);
            let (lo, hi) = ([cx - 0.5, cy - 0.8], [cx + 0.5, cy + 0.8]);
            for _ in 0..20 {
                let x = [
                    rng.sample_uniform(lo[0], hi[0]),
                    rng.sample_uniform(lo[1], hi[1]),
                ];
                for (j, (w, kern)) in model.weights().iter().zip(model.kernels()).enumerate() {
                    let term = (w * kern.eval(&x)).max(1e-300).ln();
                    let u = index.upper_bound(j, &lo, &hi);
                    let l = index.lower_bound(j, &lo, &hi);
                    // exp_fast tolerance: bounds hold to ~1e-9 relative.
                    assert!(
                        term <= u + 1e-6 && term >= l - 1e-6,
                        "kernel {j}: term {term} outside [{l}, {u}]"
                    );
                }
            }
        }
    }

    #[test]
    fn tight_tile_prunes_far_components() {
        let gmm = spread_gmm(64);
        let index = PruneIndex::for_diag_gmm(&gmm, PruneConfig::enabled()).unwrap();
        // A tight cloud around one mean should keep far fewer than K.
        let m = &gmm.means()[0];
        let mut pts = Vec::new();
        for s in 0..32 {
            pts.push(m[0] + (s as f64 - 16.0) * 0.01);
            pts.push(m[1] + (s as f64 - 16.0) * 0.008);
        }
        let mut scratch = PruneScratch::default();
        let cands = index
            .candidates_for_points(&pts, &[], &mut scratch)
            .unwrap();
        assert!(!cands.is_empty());
        assert!(
            cands.len() < 64,
            "expected pruning, kept {} of 64",
            cands.len()
        );
        assert!(cands.contains(&0), "the enclosing component must survive");
        assert!(cands.windows(2).all(|w| w[0] < w[1]), "ascending order");
    }

    #[test]
    fn non_finite_tile_returns_none() {
        let gmm = spread_gmm(8);
        let index = PruneIndex::for_diag_gmm(&gmm, PruneConfig::enabled()).unwrap();
        let mut scratch = PruneScratch::default();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let pts = vec![0.0, 0.0, bad, 1.0];
            assert!(index
                .candidates_for_points(&pts, &[], &mut scratch)
                .is_none());
        }
        assert!(index
            .candidates_for_points(&[], &[], &mut scratch)
            .is_none());
    }

    #[test]
    fn far_outside_grid_still_resolves() {
        let gmm = spread_gmm(8);
        let index = PruneIndex::for_diag_gmm(&gmm, PruneConfig::enabled()).unwrap();
        let mut scratch = PruneScratch::default();
        let pts = vec![1e6, -1e6, 1e6 + 1.0, -1e6 - 1.0];
        let cands = index
            .candidates_for_points(&pts, &[], &mut scratch)
            .unwrap();
        assert!(!cands.is_empty(), "survivor set is never empty");
    }

    #[test]
    fn pruned_gmm_batch_matches_full_within_epsilon() {
        use navicim_backend::{par, PointBatch};
        let mut rng = Pcg32::seed_from_u64(21);
        for &k in &[4usize, 16, 64] {
            let mut full = spread_gmm(k);
            let mut pruned = spread_gmm(k);
            pruned.set_prune(PruneConfig::enabled());
            // Clustered cloud (pruning active) plus scattered outliers.
            let mut batch = PointBatch::new(2);
            let (cx, cy) = (rng.sample_uniform(-8.0, 8.0), rng.sample_uniform(-8.0, 8.0));
            for _ in 0..700 {
                batch.push(&[rng.sample_normal(cx, 0.3), rng.sample_normal(cy, 0.3)]);
            }
            for _ in 0..61 {
                batch.push(&[
                    rng.sample_uniform(-12.0, 12.0),
                    rng.sample_uniform(-12.0, 12.0),
                ]);
            }
            let mut want = vec![0.0; batch.len()];
            full.log_likelihood_into_policy(&batch, &mut want, par::ChunkPolicy::auto());
            for policy in [
                par::ChunkPolicy::auto(),
                par::ChunkPolicy::exact(100, 4),
                par::ChunkPolicy::exact(3, 2),
            ] {
                let mut got = vec![0.0; batch.len()];
                pruned.log_likelihood_into_policy(&batch, &mut got, policy);
                for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                    assert!(
                        (g - w).abs() <= PRUNE_EPSILON,
                        "k={k} point {i}: pruned {g} vs full {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn pruned_hmgm_batch_matches_full_within_epsilon() {
        use navicim_backend::{par, PointBatch};
        let mut rng = Pcg32::seed_from_u64(22);
        for &k in &[4usize, 16, 64] {
            let mut full = spread_hmgm(k);
            let mut pruned = spread_hmgm(k);
            pruned.set_prune(PruneConfig::enabled());
            let mut batch = PointBatch::new(2);
            let (cx, cy) = (rng.sample_uniform(-8.0, 8.0), rng.sample_uniform(-8.0, 8.0));
            for _ in 0..700 {
                batch.push(&[rng.sample_normal(cx, 0.4), rng.sample_normal(cy, 0.4)]);
            }
            for _ in 0..61 {
                batch.push(&[
                    rng.sample_uniform(-12.0, 12.0),
                    rng.sample_uniform(-12.0, 12.0),
                ]);
            }
            let mut want = vec![0.0; batch.len()];
            full.log_likelihood_into_policy(&batch, &mut want, par::ChunkPolicy::auto());
            for policy in [
                par::ChunkPolicy::auto(),
                par::ChunkPolicy::exact(100, 4),
                par::ChunkPolicy::exact(3, 2),
            ] {
                let mut got = vec![0.0; batch.len()];
                pruned.log_likelihood_into_policy(&batch, &mut got, policy);
                for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                    assert!(
                        (g - w).abs() <= PRUNE_EPSILON,
                        "k={k} point {i}: pruned {g} vs full {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn non_finite_points_fall_back_bit_identically() {
        use navicim_backend::{par, PointBatch};
        let mut rng = Pcg32::seed_from_u64(23);
        let mut full = spread_gmm(16);
        let mut pruned = spread_gmm(16);
        pruned.set_prune(PruneConfig::enabled());
        let mut batch = PointBatch::new(2);
        for i in 0..50 {
            match i % 9 {
                3 => batch.push(&[f64::NAN, rng.sample_uniform(-5.0, 5.0)]),
                6 => batch.push(&[rng.sample_uniform(-5.0, 5.0), f64::NEG_INFINITY]),
                _ => batch.push(&[rng.sample_uniform(-5.0, 5.0), rng.sample_uniform(-5.0, 5.0)]),
            }
        }
        // The poisoned tile (every tile here: n < PRUNE_TILE) falls back
        // to the full path, so outputs are bit-identical — including NaN
        // propagation patterns.
        let mut want = vec![0.0; batch.len()];
        full.log_likelihood_into_policy(&batch, &mut want, par::ChunkPolicy::auto());
        let mut got = vec![0.0; batch.len()];
        pruned.log_likelihood_into_policy(&batch, &mut got, par::ChunkPolicy::exact(7, 3));
        assert_eq!(
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        // Same contract on the HMG side.
        let mut hfull = spread_hmgm(16);
        let mut hpruned = spread_hmgm(16);
        hpruned.set_prune(PruneConfig::enabled());
        let mut hwant = vec![0.0; batch.len()];
        hfull.log_likelihood_into_policy(&batch, &mut hwant, par::ChunkPolicy::auto());
        let mut hgot = vec![0.0; batch.len()];
        hpruned.log_likelihood_into_policy(&batch, &mut hgot, par::ChunkPolicy::exact(7, 3));
        assert_eq!(
            hwant.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            hgot.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn prune_toggle_off_restores_bit_identity() {
        use navicim_backend::{par, PointBatch};
        let mut rng = Pcg32::seed_from_u64(24);
        let mut batch = PointBatch::new(2);
        for _ in 0..300 {
            batch.push(&[
                rng.sample_uniform(-10.0, 10.0),
                rng.sample_uniform(-10.0, 10.0),
            ]);
        }
        let mut baseline = spread_gmm(32);
        let mut toggled = spread_gmm(32);
        toggled.set_prune(PruneConfig::enabled());
        toggled.set_prune(PruneConfig::default());
        let mut want = vec![0.0; batch.len()];
        baseline.log_likelihood_into_policy(&batch, &mut want, par::ChunkPolicy::auto());
        let mut got = vec![0.0; batch.len()];
        toggled.log_likelihood_into_policy(&batch, &mut got, par::ChunkPolicy::auto());
        assert_eq!(
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn padding_widens_the_query() {
        let gmm = spread_gmm(64);
        let index = PruneIndex::for_diag_gmm(&gmm, PruneConfig::enabled()).unwrap();
        let m = &gmm.means()[0];
        let pts = vec![m[0], m[1]];
        let mut s1 = PruneScratch::default();
        let mut s2 = PruneScratch::default();
        let narrow = index
            .candidates_for_points(&pts, &[], &mut s1)
            .unwrap()
            .len();
        let wide = index
            .candidates_for_points(&pts, &[5.0, 5.0], &mut s2)
            .unwrap()
            .len();
        assert!(wide >= narrow, "padding can only add candidates");
    }
}
