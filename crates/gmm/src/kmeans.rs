//! k-means clustering with k-means++ seeding.
//!
//! Used to initialize both the GMM and HMGM fitters.

use crate::{check_dims, GmmError, Result};
use navicim_math::linalg::dist_sq;
use navicim_math::rng::{Rng64, SampleExt};

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KmeansResult {
    /// Cluster centroids, one `dim`-vector per cluster.
    pub centroids: Vec<Vec<f64>>,
    /// Per-point cluster assignment.
    pub assignments: Vec<usize>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
    /// Number of Lloyd iterations performed.
    pub iterations: usize,
}

/// Runs k-means++ seeding followed by Lloyd iterations.
///
/// # Errors
///
/// Returns [`GmmError::TooFewPoints`] when `points.len() < k`,
/// [`GmmError::InconsistentDimensions`] for ragged data and
/// [`GmmError::InvalidArgument`] for `k == 0`.
pub fn kmeans<R: Rng64 + ?Sized>(
    points: &[Vec<f64>],
    k: usize,
    max_iters: usize,
    rng: &mut R,
) -> Result<KmeansResult> {
    if k == 0 {
        return Err(GmmError::InvalidArgument("k must be positive".into()));
    }
    check_dims(points)?;
    if points.len() < k {
        return Err(GmmError::TooFewPoints {
            points: points.len(),
            components: k,
        });
    }

    let mut centroids = plus_plus_seeds(points, k, rng);
    let mut assignments = vec![0usize; points.len()];
    let mut inertia = f64::INFINITY;
    let mut iterations = 0;

    for iter in 0..max_iters {
        iterations = iter + 1;
        // Assignment step.
        let mut new_inertia = 0.0;
        for (i, p) in points.iter().enumerate() {
            let (best, d) = nearest(p, &centroids);
            assignments[i] = best;
            new_inertia += d;
        }
        // Update step.
        let dim = points[0].len();
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, &x) in sums[a].iter_mut().zip(p) {
                *s += x;
            }
        }
        for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if count > 0 {
                for (ci, &s) in c.iter_mut().zip(sum) {
                    *ci = s / count as f64;
                }
            } else {
                // Re-seed an empty cluster at a random point.
                *c = points[rng.sample_index(points.len())].clone();
            }
        }
        // Convergence: inertia stopped improving.
        if (inertia - new_inertia).abs() < 1e-10 * (1.0 + inertia.abs()) {
            inertia = new_inertia;
            break;
        }
        inertia = new_inertia;
    }

    Ok(KmeansResult {
        centroids,
        assignments,
        inertia,
        iterations,
    })
}

/// k-means++ seeding: the first centroid is uniform, each subsequent one is
/// drawn with probability proportional to its squared distance from the
/// nearest existing centroid.
fn plus_plus_seeds<R: Rng64 + ?Sized>(points: &[Vec<f64>], k: usize, rng: &mut R) -> Vec<Vec<f64>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.sample_index(points.len())].clone());
    let mut d2: Vec<f64> = points.iter().map(|p| dist_sq(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let idx = if total <= 0.0 {
            rng.sample_index(points.len())
        } else {
            rng.sample_weighted(&d2)
        };
        centroids.push(points[idx].clone());
        let newest = centroids.last().expect("just pushed");
        for (d, p) in d2.iter_mut().zip(points) {
            *d = d.min(dist_sq(p, newest));
        }
    }
    centroids
}

fn nearest(p: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = dist_sq(p, c);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    (best, best_d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_math::rng::Pcg32;

    fn two_blobs(n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut pts = Vec::with_capacity(2 * n);
        for _ in 0..n {
            pts.push(vec![
                rng.sample_normal(0.0, 0.3),
                rng.sample_normal(0.0, 0.3),
            ]);
            pts.push(vec![
                rng.sample_normal(10.0, 0.3),
                rng.sample_normal(10.0, 0.3),
            ]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let pts = two_blobs(100, 1);
        let mut rng = Pcg32::seed_from_u64(2);
        let res = kmeans(&pts, 2, 50, &mut rng).unwrap();
        let mut centers = res.centroids.clone();
        centers.sort_by(|a, b| a[0].partial_cmp(&b[0]).unwrap());
        assert!(centers[0][0].abs() < 0.5, "{centers:?}");
        assert!((centers[1][0] - 10.0).abs() < 0.5, "{centers:?}");
        // All points in the same blob share an assignment.
        let a0 = res.assignments[0];
        let a1 = res.assignments[1];
        assert_ne!(a0, a1);
        for i in (0..pts.len()).step_by(2) {
            assert_eq!(res.assignments[i], a0);
            assert_eq!(res.assignments[i + 1], a1);
        }
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let pts = vec![vec![0.0], vec![1.0], vec![2.0]];
        let mut rng = Pcg32::seed_from_u64(3);
        let res = kmeans(&pts, 3, 20, &mut rng).unwrap();
        assert!(res.inertia < 1e-18);
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut rng = Pcg32::seed_from_u64(4);
        assert!(kmeans(&[vec![1.0]], 2, 10, &mut rng).is_err());
        assert!(kmeans(&[vec![1.0]], 0, 10, &mut rng).is_err());
        assert!(kmeans(&[vec![1.0], vec![1.0, 2.0]], 1, 10, &mut rng).is_err());
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let pts = two_blobs(100, 5);
        let mut rng = Pcg32::seed_from_u64(6);
        let r2 = kmeans(&pts, 2, 50, &mut rng).unwrap();
        let r8 = kmeans(&pts, 8, 50, &mut rng).unwrap();
        assert!(r8.inertia < r2.inertia);
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = two_blobs(50, 7);
        let mut a = Pcg32::seed_from_u64(8);
        let mut b = Pcg32::seed_from_u64(8);
        let ra = kmeans(&pts, 3, 30, &mut a).unwrap();
        let rb = kmeans(&pts, 3, 30, &mut b).unwrap();
        assert_eq!(ra.centroids, rb.centroids);
    }

    #[test]
    fn duplicate_points_handled() {
        let pts = vec![vec![1.0, 1.0]; 10];
        let mut rng = Pcg32::seed_from_u64(9);
        let res = kmeans(&pts, 3, 10, &mut rng).unwrap();
        assert!(res.inertia < 1e-18);
    }
}
