//! Expectation-maximization fitting for Gaussian mixtures.

use crate::gaussian::{Covariance, Gmm};
use crate::kmeans::kmeans;
use crate::{check_dims, GmmError, Result};
use navicim_math::linalg::Matrix;
use navicim_math::rng::Rng64;
use navicim_math::stats::{diag_mvn_logpdf, log_sum_exp, mvn_logpdf};

/// Configuration of an EM run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitConfig {
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Convergence threshold on the mean log-likelihood improvement.
    pub tol: f64,
    /// Variance floor preventing component collapse.
    pub var_floor: f64,
    /// k-means iterations used for initialization.
    pub kmeans_iters: usize,
}

impl Default for FitConfig {
    fn default() -> Self {
        Self {
            max_iters: 100,
            tol: 1e-6,
            var_floor: 1e-6,
            kmeans_iters: 25,
        }
    }
}

/// Fits a diagonal-covariance GMM with EM (k-means++ initialized).
///
/// # Errors
///
/// Propagates initialization errors and returns
/// [`GmmError::DegenerateFit`] when EM collapses.
pub fn fit_diag_gmm<R: Rng64 + ?Sized>(
    points: &[Vec<f64>],
    k: usize,
    config: &FitConfig,
    rng: &mut R,
) -> Result<Gmm> {
    let dim = check_dims(points)?;
    if points.len() < 2 * k {
        return Err(GmmError::TooFewPoints {
            points: points.len(),
            components: k,
        });
    }
    let init = kmeans(points, k, config.kmeans_iters, rng)?;
    let mut weights = vec![1.0 / k as f64; k];
    let mut means = init.centroids;
    let mut vars = initial_vars(points, &init.assignments, &means, config.var_floor);

    let n = points.len();
    let mut prev_ll = f64::NEG_INFINITY;
    for _iter in 0..config.max_iters {
        // E-step: responsibilities in log space.
        let mut log_resp = vec![vec![0.0f64; k]; n];
        let mut total_ll = 0.0;
        for (i, p) in points.iter().enumerate() {
            let mut terms = Vec::with_capacity(k);
            for j in 0..k {
                let sds: Vec<f64> = vars[j].iter().map(|v| v.sqrt()).collect();
                terms.push(weights[j].max(1e-300).ln() + diag_mvn_logpdf(p, &means[j], &sds));
            }
            let lse = log_sum_exp(&terms);
            total_ll += lse;
            for j in 0..k {
                log_resp[i][j] = terms[j] - lse;
            }
        }
        // M-step.
        for j in 0..k {
            let resp: Vec<f64> = (0..n).map(|i| log_resp[i][j].exp()).collect();
            let nk: f64 = resp.iter().sum();
            if nk < 1e-9 {
                return Err(GmmError::DegenerateFit(format!(
                    "component {j} lost all responsibility"
                )));
            }
            weights[j] = nk / n as f64;
            for d in 0..dim {
                let mu: f64 = points.iter().zip(&resp).map(|(p, r)| r * p[d]).sum::<f64>() / nk;
                means[j][d] = mu;
                let var: f64 = points
                    .iter()
                    .zip(&resp)
                    .map(|(p, r)| r * (p[d] - mu) * (p[d] - mu))
                    .sum::<f64>()
                    / nk;
                vars[j][d] = var.max(config.var_floor);
            }
        }
        let mean_ll = total_ll / n as f64;
        if (mean_ll - prev_ll).abs() < config.tol {
            break;
        }
        prev_ll = mean_ll;
    }
    Gmm::new(weights, means, Covariance::Diagonal(vars))
}

/// Fits a full-covariance GMM with EM (k-means++ initialized).
///
/// # Errors
///
/// Propagates initialization errors and returns
/// [`GmmError::DegenerateFit`] when EM collapses.
pub fn fit_full_gmm<R: Rng64 + ?Sized>(
    points: &[Vec<f64>],
    k: usize,
    config: &FitConfig,
    rng: &mut R,
) -> Result<Gmm> {
    let dim = check_dims(points)?;
    if points.len() < 2 * k {
        return Err(GmmError::TooFewPoints {
            points: points.len(),
            components: k,
        });
    }
    let init = kmeans(points, k, config.kmeans_iters, rng)?;
    let mut weights = vec![1.0 / k as f64; k];
    let mut means = init.centroids;
    let vars = initial_vars(points, &init.assignments, &means, config.var_floor);
    let mut covs: Vec<Matrix> = vars.iter().map(|v| Matrix::diag(v)).collect();

    let n = points.len();
    let mut prev_ll = f64::NEG_INFINITY;
    for _iter in 0..config.max_iters {
        let mut log_resp = vec![vec![0.0f64; k]; n];
        let mut total_ll = 0.0;
        for (i, p) in points.iter().enumerate() {
            let mut terms = Vec::with_capacity(k);
            for j in 0..k {
                let lp = mvn_logpdf(p, &means[j], &covs[j]).unwrap_or(f64::NEG_INFINITY);
                terms.push(weights[j].max(1e-300).ln() + lp);
            }
            let lse = log_sum_exp(&terms);
            total_ll += lse;
            for j in 0..k {
                log_resp[i][j] = terms[j] - lse;
            }
        }
        for j in 0..k {
            let resp: Vec<f64> = (0..n).map(|i| log_resp[i][j].exp()).collect();
            let nk: f64 = resp.iter().sum();
            if nk < 1e-9 {
                return Err(GmmError::DegenerateFit(format!(
                    "component {j} lost all responsibility"
                )));
            }
            weights[j] = nk / n as f64;
            for d in 0..dim {
                means[j][d] = points.iter().zip(&resp).map(|(p, r)| r * p[d]).sum::<f64>() / nk;
            }
            let mut cov = Matrix::zeros(dim, dim);
            for (p, r) in points.iter().zip(&resp) {
                for a in 0..dim {
                    for b in 0..dim {
                        cov[(a, b)] += r * (p[a] - means[j][a]) * (p[b] - means[j][b]);
                    }
                }
            }
            for a in 0..dim {
                for b in 0..dim {
                    cov[(a, b)] /= nk;
                }
                cov[(a, a)] += config.var_floor;
            }
            covs[j] = cov;
        }
        let mean_ll = total_ll / n as f64;
        if (mean_ll - prev_ll).abs() < config.tol {
            break;
        }
        prev_ll = mean_ll;
    }
    Gmm::new(weights, means, Covariance::Full(covs))
}

/// Selects the diagonal-GMM component count minimizing BIC over
/// `candidates`.
///
/// # Errors
///
/// Returns the first fitting error if every candidate fails, or
/// [`GmmError::InvalidArgument`] for an empty candidate list.
pub fn select_components<R: Rng64 + ?Sized>(
    points: &[Vec<f64>],
    candidates: &[usize],
    config: &FitConfig,
    rng: &mut R,
) -> Result<(usize, Gmm)> {
    if candidates.is_empty() {
        return Err(GmmError::InvalidArgument(
            "candidate list must not be empty".into(),
        ));
    }
    let mut best: Option<(usize, Gmm, f64)> = None;
    let mut first_err = None;
    for &k in candidates {
        match fit_diag_gmm(points, k, config, rng) {
            Ok(gmm) => {
                let bic = gmm.bic(points);
                if best.as_ref().map(|(_, _, b)| bic < *b).unwrap_or(true) {
                    best = Some((k, gmm, bic));
                }
            }
            Err(e) => {
                first_err.get_or_insert(e);
            }
        }
    }
    match best {
        Some((k, gmm, _)) => Ok((k, gmm)),
        None => Err(first_err.expect("either a fit or an error must exist")),
    }
}

fn initial_vars(
    points: &[Vec<f64>],
    assignments: &[usize],
    means: &[Vec<f64>],
    floor: f64,
) -> Vec<Vec<f64>> {
    let k = means.len();
    let dim = means[0].len();
    let mut vars = vec![vec![0.0; dim]; k];
    let mut counts = vec![0usize; k];
    for (p, &a) in points.iter().zip(assignments) {
        counts[a] += 1;
        for d in 0..dim {
            vars[a][d] += (p[d] - means[a][d]) * (p[d] - means[a][d]);
        }
    }
    // Global fallback variance for empty clusters.
    let global: Vec<f64> = (0..dim)
        .map(|d| {
            let xs: Vec<f64> = points.iter().map(|p| p[d]).collect();
            navicim_math::stats::variance(&xs).max(floor)
        })
        .collect();
    for j in 0..k {
        for d in 0..dim {
            vars[j][d] = if counts[j] > 1 {
                (vars[j][d] / counts[j] as f64).max(floor)
            } else {
                global[d]
            };
        }
    }
    vars
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_math::rng::{Pcg32, SampleExt};

    fn blob_data(seed: u64, n: usize) -> Vec<Vec<f64>> {
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut pts = Vec::new();
        for _ in 0..n {
            pts.push(vec![
                rng.sample_normal(-2.0, 0.4),
                rng.sample_normal(0.0, 0.3),
            ]);
            pts.push(vec![
                rng.sample_normal(3.0, 0.6),
                rng.sample_normal(5.0, 0.5),
            ]);
        }
        pts
    }

    #[test]
    fn diag_em_recovers_two_blobs() {
        let pts = blob_data(1, 400);
        let mut rng = Pcg32::seed_from_u64(2);
        let gmm = fit_diag_gmm(&pts, 2, &FitConfig::default(), &mut rng).unwrap();
        let mut means = gmm.means().to_vec();
        means.sort_by(|a, b| a[0].partial_cmp(&b[0]).unwrap());
        assert!((means[0][0] + 2.0).abs() < 0.15, "{means:?}");
        assert!((means[1][0] - 3.0).abs() < 0.15, "{means:?}");
        assert!((means[1][1] - 5.0).abs() < 0.15, "{means:?}");
        // Weights near 0.5 each.
        for &w in gmm.weights() {
            assert!((w - 0.5).abs() < 0.05);
        }
        // Recovered sigmas in the right ballpark.
        let sds = gmm.diag_std_devs().unwrap();
        for sd in sds.iter().flatten() {
            assert!(*sd > 0.2 && *sd < 0.8, "sd = {sd}");
        }
    }

    #[test]
    fn full_em_recovers_correlation() {
        // Single correlated blob.
        let mut rng = Pcg32::seed_from_u64(3);
        let mut pts = Vec::new();
        for _ in 0..800 {
            let x = rng.sample_normal(0.0, 1.0);
            let y = 0.9 * x + rng.sample_normal(0.0, 0.3);
            pts.push(vec![x, y]);
        }
        let mut rng2 = Pcg32::seed_from_u64(4);
        let gmm = fit_full_gmm(&pts, 1, &FitConfig::default(), &mut rng2).unwrap();
        if let Covariance::Full(covs) = gmm.covariance() {
            let c = &covs[0];
            let rho = c[(0, 1)] / (c[(0, 0)] * c[(1, 1)]).sqrt();
            assert!(rho > 0.85, "recovered correlation {rho}");
        } else {
            panic!("expected full covariance");
        }
    }

    #[test]
    fn likelihood_improves_over_iterations() {
        let pts = blob_data(5, 200);
        let cheap = FitConfig {
            max_iters: 1,
            ..FitConfig::default()
        };
        let mut rng_a = Pcg32::seed_from_u64(6);
        let mut rng_b = Pcg32::seed_from_u64(6);
        let g1 = fit_diag_gmm(&pts, 2, &cheap, &mut rng_a).unwrap();
        let g50 = fit_diag_gmm(&pts, 2, &FitConfig::default(), &mut rng_b).unwrap();
        let ll1: f64 = pts.iter().map(|p| g1.log_pdf(p)).sum();
        let ll50: f64 = pts.iter().map(|p| g50.log_pdf(p)).sum();
        assert!(ll50 >= ll1 - 1e-6, "ll1={ll1}, ll50={ll50}");
    }

    #[test]
    fn too_few_points_rejected() {
        let pts = vec![vec![0.0], vec![1.0], vec![2.0]];
        let mut rng = Pcg32::seed_from_u64(7);
        assert!(matches!(
            fit_diag_gmm(&pts, 2, &FitConfig::default(), &mut rng),
            Err(GmmError::TooFewPoints { .. })
        ));
    }

    #[test]
    fn var_floor_prevents_collapse() {
        // Many duplicate points would drive variance to zero without floor.
        let mut pts = vec![vec![1.0, 1.0]; 50];
        pts.extend(vec![vec![5.0, 5.0]; 50]);
        let mut rng = Pcg32::seed_from_u64(8);
        let gmm = fit_diag_gmm(&pts, 2, &FitConfig::default(), &mut rng).unwrap();
        if let Covariance::Diagonal(vars) = gmm.covariance() {
            for v in vars.iter().flatten() {
                assert!(*v >= 1e-6);
            }
        }
        // Density is finite at the data points.
        assert!(gmm.log_pdf(&[1.0, 1.0]).is_finite());
    }

    #[test]
    fn select_components_finds_two() {
        let pts = blob_data(9, 300);
        let mut rng = Pcg32::seed_from_u64(10);
        let (k, _) = select_components(&pts, &[1, 2, 4], &FitConfig::default(), &mut rng).unwrap();
        assert_eq!(k, 2);
    }
}
