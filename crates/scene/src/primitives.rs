//! Analytic shape primitives with ray intersection and surface sampling.

use navicim_math::geom::{Aabb, Ray, Vec3};
use navicim_math::rng::{Rng64, SampleExt};

/// A solid shape in the scene.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Shape {
    /// Axis-aligned cuboid.
    Cuboid(Aabb),
    /// Sphere.
    Sphere {
        /// Centre.
        center: Vec3,
        /// Radius.
        radius: f64,
    },
    /// Vertical (Z-axis-aligned) cylinder.
    Cylinder {
        /// Centre of the bottom cap.
        base: Vec3,
        /// Radius.
        radius: f64,
        /// Height along +Z.
        height: f64,
    },
}

impl Shape {
    /// First intersection distance of `ray` with the shape, if any.
    ///
    /// Distances at or below `1e-9` are rejected so rays starting on a
    /// surface do not self-intersect.
    pub fn intersect(&self, ray: Ray) -> Option<f64> {
        match *self {
            Shape::Cuboid(aabb) => aabb.intersect_ray(ray).filter(|&t| t > 1e-9),
            Shape::Sphere { center, radius } => {
                let oc = ray.origin - center;
                let b = oc.dot(ray.dir);
                let c = oc.norm_sq() - radius * radius;
                let disc = b * b - c;
                if disc < 0.0 {
                    return None;
                }
                let sqrt_d = disc.sqrt();
                let t1 = -b - sqrt_d;
                let t2 = -b + sqrt_d;
                if t1 > 1e-9 {
                    Some(t1)
                } else if t2 > 1e-9 {
                    Some(t2)
                } else {
                    None
                }
            }
            Shape::Cylinder {
                base,
                radius,
                height,
            } => intersect_cylinder(ray, base, radius, height),
        }
    }

    /// Draws a point uniformly distributed on the shape's surface.
    pub fn sample_surface<R: Rng64 + ?Sized>(&self, rng: &mut R) -> Vec3 {
        match *self {
            Shape::Cuboid(aabb) => sample_cuboid_surface(aabb, rng),
            Shape::Sphere { center, radius } => {
                // Uniform direction via normalized Gaussian triple.
                let v = Vec3::new(
                    rng.sample_standard_normal(),
                    rng.sample_standard_normal(),
                    rng.sample_standard_normal(),
                );
                let v = if v.norm() < 1e-12 {
                    Vec3::Z
                } else {
                    v.normalized()
                };
                center + v * radius
            }
            Shape::Cylinder {
                base,
                radius,
                height,
            } => sample_cylinder_surface(base, radius, height, rng),
        }
    }

    /// Total surface area.
    pub fn surface_area(&self) -> f64 {
        match *self {
            Shape::Cuboid(aabb) => {
                let s = aabb.size();
                2.0 * (s.x * s.y + s.y * s.z + s.x * s.z)
            }
            Shape::Sphere { radius, .. } => 4.0 * std::f64::consts::PI * radius * radius,
            Shape::Cylinder { radius, height, .. } => {
                2.0 * std::f64::consts::PI * radius * (radius + height)
            }
        }
    }

    /// Axis-aligned bounding box of the shape.
    pub fn bounding_box(&self) -> Aabb {
        match *self {
            Shape::Cuboid(aabb) => aabb,
            Shape::Sphere { center, radius } => {
                Aabb::new(center - Vec3::splat(radius), center + Vec3::splat(radius))
            }
            Shape::Cylinder {
                base,
                radius,
                height,
            } => Aabb::new(
                base - Vec3::new(radius, radius, 0.0),
                base + Vec3::new(radius, radius, height),
            ),
        }
    }
}

fn intersect_cylinder(ray: Ray, base: Vec3, radius: f64, height: f64) -> Option<f64> {
    let mut best: Option<f64> = None;
    let mut consider = |t: f64| {
        if t > 1e-9 && best.map(|b| t < b).unwrap_or(true) {
            best = Some(t);
        }
    };
    // Lateral surface: project to XY.
    let ox = ray.origin.x - base.x;
    let oy = ray.origin.y - base.y;
    let (dx, dy) = (ray.dir.x, ray.dir.y);
    let a = dx * dx + dy * dy;
    if a > 1e-18 {
        let b = ox * dx + oy * dy;
        let c = ox * ox + oy * oy - radius * radius;
        let disc = b * b - a * c;
        if disc >= 0.0 {
            let sqrt_d = disc.sqrt();
            for t in [(-b - sqrt_d) / a, (-b + sqrt_d) / a] {
                let z = ray.origin.z + t * ray.dir.z;
                if z >= base.z && z <= base.z + height {
                    consider(t);
                }
            }
        }
    }
    // Caps.
    if ray.dir.z.abs() > 1e-12 {
        for cap_z in [base.z, base.z + height] {
            let t = (cap_z - ray.origin.z) / ray.dir.z;
            let x = ray.origin.x + t * ray.dir.x - base.x;
            let y = ray.origin.y + t * ray.dir.y - base.y;
            if x * x + y * y <= radius * radius {
                consider(t);
            }
        }
    }
    best
}

fn sample_cuboid_surface<R: Rng64 + ?Sized>(aabb: Aabb, rng: &mut R) -> Vec3 {
    let s = aabb.size();
    let areas = [
        s.y * s.z, // x faces (each)
        s.y * s.z,
        s.x * s.z, // y faces
        s.x * s.z,
        s.x * s.y, // z faces
        s.x * s.y,
    ];
    let face = rng.sample_weighted(&areas);
    let u = rng.next_f64();
    let v = rng.next_f64();
    match face {
        0 => Vec3::new(aabb.min.x, aabb.min.y + u * s.y, aabb.min.z + v * s.z),
        1 => Vec3::new(aabb.max.x, aabb.min.y + u * s.y, aabb.min.z + v * s.z),
        2 => Vec3::new(aabb.min.x + u * s.x, aabb.min.y, aabb.min.z + v * s.z),
        3 => Vec3::new(aabb.min.x + u * s.x, aabb.max.y, aabb.min.z + v * s.z),
        4 => Vec3::new(aabb.min.x + u * s.x, aabb.min.y + v * s.y, aabb.min.z),
        _ => Vec3::new(aabb.min.x + u * s.x, aabb.min.y + v * s.y, aabb.max.z),
    }
}

fn sample_cylinder_surface<R: Rng64 + ?Sized>(
    base: Vec3,
    radius: f64,
    height: f64,
    rng: &mut R,
) -> Vec3 {
    let lateral = 2.0 * std::f64::consts::PI * radius * height;
    let cap = std::f64::consts::PI * radius * radius;
    let which = rng.sample_weighted(&[lateral, cap, cap]);
    let theta = rng.sample_uniform(0.0, 2.0 * std::f64::consts::PI);
    match which {
        0 => Vec3::new(
            base.x + radius * theta.cos(),
            base.y + radius * theta.sin(),
            base.z + rng.next_f64() * height,
        ),
        w => {
            let r = radius * rng.next_f64().sqrt();
            let z = if w == 1 { base.z } else { base.z + height };
            Vec3::new(base.x + r * theta.cos(), base.y + r * theta.sin(), z)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_math::rng::Pcg32;

    #[test]
    fn sphere_intersection_head_on() {
        let s = Shape::Sphere {
            center: Vec3::new(0.0, 0.0, 5.0),
            radius: 1.0,
        };
        let r = Ray::new(Vec3::ZERO, Vec3::Z);
        let t = s.intersect(r).unwrap();
        assert!((t - 4.0).abs() < 1e-12);
        // From inside: exits through the far wall.
        let r_in = Ray::new(Vec3::new(0.0, 0.0, 5.0), Vec3::Z);
        assert!((s.intersect(r_in).unwrap() - 1.0).abs() < 1e-12);
        // Miss.
        let r_miss = Ray::new(Vec3::new(3.0, 0.0, 0.0), Vec3::Z);
        assert!(s.intersect(r_miss).is_none());
    }

    #[test]
    fn cuboid_intersection() {
        let c = Shape::Cuboid(Aabb::new(
            Vec3::new(-1.0, -1.0, 2.0),
            Vec3::new(1.0, 1.0, 4.0),
        ));
        let t = c.intersect(Ray::new(Vec3::ZERO, Vec3::Z)).unwrap();
        assert!((t - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cylinder_lateral_and_cap() {
        let cyl = Shape::Cylinder {
            base: Vec3::new(0.0, 0.0, 0.0),
            radius: 1.0,
            height: 2.0,
        };
        // Horizontal ray hits the lateral wall.
        let t = cyl
            .intersect(Ray::new(Vec3::new(-5.0, 0.0, 1.0), Vec3::X))
            .unwrap();
        assert!((t - 4.0).abs() < 1e-12);
        // Vertical ray from above hits the top cap.
        let t = cyl
            .intersect(Ray::new(Vec3::new(0.3, 0.2, 5.0), -Vec3::Z))
            .unwrap();
        assert!((t - 3.0).abs() < 1e-12);
        // Ray above the cylinder, horizontal: miss.
        assert!(cyl
            .intersect(Ray::new(Vec3::new(-5.0, 0.0, 3.0), Vec3::X))
            .is_none());
    }

    #[test]
    fn surface_samples_lie_on_surface() {
        let mut rng = Pcg32::seed_from_u64(1);
        let sphere = Shape::Sphere {
            center: Vec3::new(1.0, 2.0, 3.0),
            radius: 0.7,
        };
        for _ in 0..200 {
            let p = sphere.sample_surface(&mut rng);
            assert!((p.distance(Vec3::new(1.0, 2.0, 3.0)) - 0.7).abs() < 1e-9);
        }
        let aabb = Aabb::new(Vec3::ZERO, Vec3::new(1.0, 2.0, 3.0));
        let cuboid = Shape::Cuboid(aabb);
        for _ in 0..200 {
            let p = cuboid.sample_surface(&mut rng);
            assert!(aabb.contains(p));
            let on_face = p.x.abs() < 1e-12
                || (p.x - 1.0).abs() < 1e-12
                || p.y.abs() < 1e-12
                || (p.y - 2.0).abs() < 1e-12
                || p.z.abs() < 1e-12
                || (p.z - 3.0).abs() < 1e-12;
            assert!(on_face, "{p:?} not on a face");
        }
        let cyl = Shape::Cylinder {
            base: Vec3::ZERO,
            radius: 1.0,
            height: 2.0,
        };
        for _ in 0..200 {
            let p = cyl.sample_surface(&mut rng);
            let r = (p.x * p.x + p.y * p.y).sqrt();
            let on_lateral = (r - 1.0).abs() < 1e-9 && p.z >= 0.0 && p.z <= 2.0;
            let on_cap = r <= 1.0 + 1e-9 && (p.z.abs() < 1e-12 || (p.z - 2.0).abs() < 1e-12);
            assert!(on_lateral || on_cap, "{p:?}");
        }
    }

    #[test]
    fn surface_areas() {
        let unit_box = Shape::Cuboid(Aabb::new(Vec3::ZERO, Vec3::splat(1.0)));
        assert!((unit_box.surface_area() - 6.0).abs() < 1e-12);
        let sphere = Shape::Sphere {
            center: Vec3::ZERO,
            radius: 1.0,
        };
        assert!((sphere.surface_area() - 4.0 * std::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    fn bounding_boxes_contain_samples() {
        let mut rng = Pcg32::seed_from_u64(2);
        for shape in [
            Shape::Sphere {
                center: Vec3::new(0.5, -0.5, 2.0),
                radius: 0.4,
            },
            Shape::Cylinder {
                base: Vec3::new(1.0, 1.0, 0.0),
                radius: 0.3,
                height: 1.5,
            },
        ] {
            let bb = shape.bounding_box();
            for _ in 0..100 {
                let p = shape.sample_surface(&mut rng);
                assert!(bb.contains(p + Vec3::splat(0.0)), "{p:?} outside {bb:?}");
            }
        }
    }

    #[test]
    fn no_self_intersection_from_surface() {
        let s = Shape::Sphere {
            center: Vec3::ZERO,
            radius: 1.0,
        };
        // Ray starting exactly on the surface pointing outward: no hit.
        let r = Ray::new(Vec3::new(1.0, 0.0, 0.0), Vec3::X);
        assert!(s.intersect(r).is_none());
    }
}
