//! Procedural RGB-D scene simulator.
//!
//! The paper evaluates both of its frameworks on the RGB-D Scenes Dataset
//! v2 (Kinect scans of tabletop scenes). Since that data is not
//! redistributable here, this crate provides the substitution documented in
//! `DESIGN.md`: procedurally generated tabletop/room scenes rendered
//! through the same pinhole depth-camera model a Kinect uses, with exact
//! ground-truth poses.
//!
//! - [`primitives`] — analytic shapes with ray intersection and surface
//!   sampling,
//! - [`scene`] — the scene container and procedural generators,
//! - [`camera`] — pinhole intrinsics, ray-cast depth rendering,
//!   back-projection,
//! - [`noise`] — Kinect-style depth noise and pixel dropout,
//! - [`trajectory`] — smooth camera trajectories (orbit, lawnmower,
//!   waypoint),
//! - [`dataset`] — bundled localization and visual-odometry datasets.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod camera;
pub mod dataset;
pub mod noise;
pub mod primitives;
pub mod scene;
pub mod trajectory;

use std::error::Error;
use std::fmt;

/// Error type for scene construction and rendering.
#[derive(Debug, Clone, PartialEq)]
pub enum SceneError {
    /// An argument was outside its valid domain.
    InvalidArgument(String),
    /// A generator produced an empty result (e.g. no visible surface).
    Empty(String),
}

impl fmt::Display for SceneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SceneError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            SceneError::Empty(msg) => write!(f, "empty result: {msg}"),
        }
    }
}

impl Error for SceneError {}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, SceneError>;
