//! Pinhole depth camera: intrinsics, ray-cast rendering, back-projection.
//!
//! The camera follows the computer-vision convention (`+Z` forward, `+X`
//! right, `+Y` down); poses are body-to-world as everywhere in navicim.

use crate::scene::Scene;
use crate::{Result, SceneError};
use navicim_math::geom::{Pose, Ray, Vec3};

/// Pinhole camera intrinsics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CameraIntrinsics {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Focal length in pixels (X).
    pub fx: f64,
    /// Focal length in pixels (Y).
    pub fy: f64,
    /// Principal point X.
    pub cx: f64,
    /// Principal point Y.
    pub cy: f64,
}

impl CameraIntrinsics {
    /// A Kinect-like VGA sensor downscaled to the given resolution,
    /// preserving the ~57° horizontal field of view.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn kinect_like(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        // Kinect v1: 640x480 with fx ≈ fy ≈ 575.
        let fx = 575.0 * width as f64 / 640.0;
        let fy = 575.0 * height as f64 / 480.0;
        Self {
            width,
            height,
            fx,
            fy,
            cx: width as f64 * 0.5 - 0.5,
            cy: height as f64 * 0.5 - 0.5,
        }
    }

    /// Camera-frame unit ray direction through pixel `(u, v)`.
    pub fn pixel_ray(&self, u: usize, v: usize) -> Vec3 {
        Vec3::new(
            (u as f64 - self.cx) / self.fx,
            (v as f64 - self.cy) / self.fy,
            1.0,
        )
        .normalized()
    }

    /// Back-projects pixel `(u, v)` with *Z-depth* `depth` to a camera-frame
    /// point.
    pub fn backproject(&self, u: usize, v: usize, depth: f64) -> Vec3 {
        Vec3::new(
            (u as f64 - self.cx) / self.fx * depth,
            (v as f64 - self.cy) / self.fy * depth,
            depth,
        )
    }
}

/// A rendered depth image. Values are *Z-depths* in metres; `0.0` marks a
/// missing return (out of range or dropout).
#[derive(Debug, Clone, PartialEq)]
pub struct DepthImage {
    width: usize,
    height: usize,
    data: Vec<f64>,
}

impl DepthImage {
    /// Creates an all-missing image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        Self {
            width,
            height,
            data: vec![0.0; width * height],
        }
    }

    /// Image width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Depth at `(u, v)`; `0.0` means missing.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds coordinates.
    pub fn depth(&self, u: usize, v: usize) -> f64 {
        assert!(u < self.width && v < self.height, "pixel out of bounds");
        self.data[v * self.width + u]
    }

    /// Sets the depth at `(u, v)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds coordinates.
    pub fn set_depth(&mut self, u: usize, v: usize, depth: f64) {
        assert!(u < self.width && v < self.height, "pixel out of bounds");
        self.data[v * self.width + u] = depth;
    }

    /// Flat row-major view of the depths.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Number of valid (non-zero) pixels.
    pub fn valid_count(&self) -> usize {
        self.data.iter().filter(|&&d| d > 0.0).count()
    }

    /// Iterates over `(u, v, depth)` for valid pixels only.
    pub fn valid_pixels(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let w = self.width;
        self.data.iter().enumerate().filter_map(move |(i, &d)| {
            if d > 0.0 {
                Some((i % w, i / w, d))
            } else {
                None
            }
        })
    }

    /// Mean depth over a `gw × gh` grid of cells (0.0 where a cell has no
    /// valid pixel) — the feature extraction used by the VO network.
    ///
    /// # Panics
    ///
    /// Panics if either grid dimension is zero.
    pub fn grid_means(&self, gw: usize, gh: usize) -> Vec<f64> {
        let mut out = Vec::new();
        self.grid_means_into(gw, gh, &mut out);
        out
    }

    /// [`Self::grid_means`] into a caller-reused buffer (cleared and
    /// refilled), plus an internal count pass folded into the output —
    /// the allocation-free form the per-frame VO stage of the streaming
    /// pipeline extracts features with.
    ///
    /// # Panics
    ///
    /// Panics if either grid dimension is zero.
    pub fn grid_means_into(&self, gw: usize, gh: usize, out: &mut Vec<f64>) {
        assert!(gw > 0 && gh > 0, "grid dimensions must be positive");
        let cells = gw * gh;
        // The buffer's upper half carries the per-cell pixel counts
        // during accumulation (exact in f64 for any realistic image) and
        // is truncated away before returning.
        out.clear();
        out.resize(2 * cells, 0.0);
        for (u, v, d) in self.valid_pixels() {
            let gu = (u * gw / self.width).min(gw - 1);
            let gv = (v * gh / self.height).min(gh - 1);
            out[gv * gw + gu] += d;
            out[cells + gv * gw + gu] += 1.0;
        }
        for i in 0..cells {
            let c = out[cells + i];
            out[i] = if c > 0.0 { out[i] / c } else { 0.0 };
        }
        out.truncate(cells);
    }
}

/// A depth camera: intrinsics plus a maximum sensing range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepthCamera {
    /// Pinhole intrinsics.
    pub intrinsics: CameraIntrinsics,
    /// Maximum sensing range in metres (Kinect: ~4.5 m).
    pub max_range: f64,
    /// Minimum sensing range in metres (Kinect: ~0.4 m).
    pub min_range: f64,
}

impl DepthCamera {
    /// A Kinect-like depth camera at the given resolution.
    pub fn kinect_like(width: usize, height: usize) -> Self {
        Self {
            intrinsics: CameraIntrinsics::kinect_like(width, height),
            max_range: 4.5,
            min_range: 0.3,
        }
    }

    /// Renders a depth image of `scene` from `pose` by ray casting.
    ///
    /// # Errors
    ///
    /// Returns [`SceneError::Empty`] for an empty scene.
    pub fn render(&self, scene: &Scene, pose: Pose) -> Result<DepthImage> {
        if scene.is_empty() {
            return Err(SceneError::Empty("cannot render an empty scene".into()));
        }
        let intr = self.intrinsics;
        let mut img = DepthImage::new(intr.width, intr.height);
        for v in 0..intr.height {
            for u in 0..intr.width {
                let dir_cam = intr.pixel_ray(u, v);
                let dir_world = pose.rotation.rotate(dir_cam);
                let ray = Ray::new(pose.translation, dir_world);
                if let Some((t, _)) = scene.intersect(ray) {
                    // Convert range along the ray to Z-depth.
                    let z = t * dir_cam.z;
                    if z >= self.min_range && z <= self.max_range {
                        img.set_depth(u, v, z);
                    }
                }
            }
        }
        Ok(img)
    }

    /// Projects the valid pixels of a depth image into world coordinates
    /// under a *hypothesized* pose — the scan-projection step of the
    /// particle-filter measurement model. `stride` subsamples pixels.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn project_to_world(&self, image: &DepthImage, pose: Pose, stride: usize) -> Vec<Vec3> {
        let mut out = Vec::new();
        self.project_to_world_into(image, pose, stride, &mut out);
        out
    }

    /// Allocation-free variant of [`DepthCamera::project_to_world`]:
    /// clears `out` and appends the projected points, keeping the buffer's
    /// allocation across calls. The particle-filter weight step projects
    /// every particle each frame, so buffer reuse matters there.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn project_to_world_into(
        &self,
        image: &DepthImage,
        pose: Pose,
        stride: usize,
        out: &mut Vec<Vec3>,
    ) {
        assert!(stride > 0, "stride must be positive");
        out.clear();
        for (u, v, d) in image.valid_pixels() {
            if !(u + v * image.width()).is_multiple_of(stride) {
                continue;
            }
            let cam_pt = self.intrinsics.backproject(u, v, d);
            out.push(pose.transform_point(cam_pt));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::Shape;
    use navicim_math::geom::Aabb;

    fn wall_scene() -> Scene {
        // A wall at z = 2 (in front of a camera at the origin looking +Z
        // ... in world terms: wall spanning x,y at distance 2 along +X).
        let mut scene = Scene::new();
        scene.add(Shape::Cuboid(Aabb::new(
            Vec3::new(2.0, -5.0, -5.0),
            Vec3::new(2.1, 5.0, 5.0),
        )));
        scene
    }

    fn camera_pose_looking_x() -> Pose {
        Pose::looking_at(Vec3::ZERO, Vec3::X, Vec3::Z)
    }

    #[test]
    fn center_pixel_depth_matches_distance() {
        let cam = DepthCamera::kinect_like(32, 24);
        let img = cam.render(&wall_scene(), camera_pose_looking_x()).unwrap();
        let (cu, cv) = (16, 12);
        let d = img.depth(cu, cv);
        assert!((d - 2.0).abs() < 0.05, "depth {d}");
    }

    #[test]
    fn depth_increases_off_axis_for_flat_wall() {
        // Z-depth stays equal across a fronto-parallel wall (that is the
        // point of Z-depth), so all valid depths should be ~2.0.
        let cam = DepthCamera::kinect_like(32, 24);
        let img = cam.render(&wall_scene(), camera_pose_looking_x()).unwrap();
        for (_, _, d) in img.valid_pixels() {
            assert!((d - 2.0).abs() < 0.1, "depth {d}");
        }
        assert!(img.valid_count() > 100);
    }

    #[test]
    fn out_of_range_returns_missing() {
        let cam = DepthCamera {
            max_range: 1.0,
            ..DepthCamera::kinect_like(16, 12)
        };
        let img = cam.render(&wall_scene(), camera_pose_looking_x()).unwrap();
        assert_eq!(img.valid_count(), 0);
    }

    #[test]
    fn backproject_project_roundtrip() {
        let cam = DepthCamera::kinect_like(64, 48);
        let pose = Pose::looking_at(Vec3::new(0.5, -1.0, 1.0), Vec3::new(2.0, 0.0, 0.5), Vec3::Z);
        let img = {
            let mut scene = Scene::new();
            scene.add(Shape::Cuboid(Aabb::new(
                Vec3::new(3.0, -5.0, -5.0),
                Vec3::new(3.1, 5.0, 5.0),
            )));
            cam.render(&scene, pose).unwrap()
        };
        // Project pixels to world: they must land on the wall plane x≈3.
        let pts = cam.project_to_world(&img, pose, 1);
        assert!(!pts.is_empty());
        for p in pts {
            assert!((p.x - 3.0).abs() < 0.02, "{p:?}");
        }
    }

    #[test]
    fn projection_under_wrong_pose_misses_wall() {
        let cam = DepthCamera::kinect_like(32, 24);
        let true_pose = camera_pose_looking_x();
        let img = cam.render(&wall_scene(), true_pose).unwrap();
        let wrong = Pose::looking_at(Vec3::new(-1.0, 0.0, 0.0), Vec3::X, Vec3::Z);
        let pts = cam.project_to_world(&img, wrong, 1);
        // Same Z-depths (~2 m) re-projected from a camera 1 m farther back:
        // points land on the plane x ≈ 1, a full metre before the wall.
        for p in pts {
            assert!((p.x - 1.0).abs() < 0.1, "{p:?}");
        }
    }

    #[test]
    fn stride_subsamples() {
        let cam = DepthCamera::kinect_like(32, 24);
        let img = cam.render(&wall_scene(), camera_pose_looking_x()).unwrap();
        let all = cam.project_to_world(&img, camera_pose_looking_x(), 1).len();
        let some = cam.project_to_world(&img, camera_pose_looking_x(), 4).len();
        assert!(some < all);
        assert!(some >= all / 5);
    }

    #[test]
    fn grid_means_shape_and_values() {
        let mut img = DepthImage::new(8, 8);
        for u in 0..4 {
            for v in 0..8 {
                img.set_depth(u, v, 1.0);
            }
        }
        let g = img.grid_means(2, 2);
        assert_eq!(g.len(), 4);
        assert!((g[0] - 1.0).abs() < 1e-12); // left cells all 1.0
        assert_eq!(g[1], 0.0); // right cells empty
    }

    #[test]
    fn render_empty_scene_errors() {
        let cam = DepthCamera::kinect_like(8, 8);
        assert!(cam.render(&Scene::new(), Pose::IDENTITY).is_err());
    }
}
