//! Depth-sensor noise models.
//!
//! Kinect-class structured-light sensors exhibit a depth error whose
//! standard deviation grows roughly quadratically with distance, plus
//! random pixel dropouts near edges and on specular surfaces. Both effects
//! feed the paper's robustness story (Fig. 1's "perception uncertainty").

use crate::camera::DepthImage;
use navicim_math::rng::{Rng64, SampleExt};

/// Kinect-style depth noise model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepthNoise {
    /// Base noise σ at 1 m, in metres (Kinect v1: ~1.5 mm).
    pub sigma_at_1m: f64,
    /// Probability that a valid pixel drops out entirely.
    pub dropout_prob: f64,
}

impl DepthNoise {
    /// Kinect v1-like defaults.
    pub fn kinect_like() -> Self {
        Self {
            sigma_at_1m: 0.0015,
            dropout_prob: 0.05,
        }
    }

    /// A noiseless model (for ablations).
    pub fn none() -> Self {
        Self {
            sigma_at_1m: 0.0,
            dropout_prob: 0.0,
        }
    }

    /// Depth-dependent noise σ: quadratic in distance.
    pub fn sigma_at(&self, depth: f64) -> f64 {
        self.sigma_at_1m * depth * depth
    }

    /// Applies noise and dropout to an image in place.
    pub fn apply<R: Rng64 + ?Sized>(&self, image: &mut DepthImage, rng: &mut R) {
        let (w, h) = (image.width(), image.height());
        for v in 0..h {
            for u in 0..w {
                let d = image.depth(u, v);
                if d <= 0.0 {
                    continue;
                }
                if self.dropout_prob > 0.0 && rng.sample_bool(self.dropout_prob) {
                    image.set_depth(u, v, 0.0);
                    continue;
                }
                if self.sigma_at_1m > 0.0 {
                    let noisy = d + rng.sample_normal(0.0, self.sigma_at(d));
                    image.set_depth(u, v, noisy.max(1e-3));
                }
            }
        }
    }
}

impl Default for DepthNoise {
    fn default() -> Self {
        Self::kinect_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_math::rng::Pcg32;
    use navicim_math::stats;

    fn flat_image(depth: f64) -> DepthImage {
        let mut img = DepthImage::new(64, 64);
        for v in 0..64 {
            for u in 0..64 {
                img.set_depth(u, v, depth);
            }
        }
        img
    }

    #[test]
    fn noise_sigma_scales_quadratically() {
        let n = DepthNoise::kinect_like();
        assert!((n.sigma_at(2.0) / n.sigma_at(1.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn applied_noise_matches_model() {
        let n = DepthNoise {
            sigma_at_1m: 0.01,
            dropout_prob: 0.0,
        };
        let mut img = flat_image(2.0);
        let mut rng = Pcg32::seed_from_u64(1);
        n.apply(&mut img, &mut rng);
        let depths: Vec<f64> = img.valid_pixels().map(|(_, _, d)| d).collect();
        let sd = stats::std_dev(&depths);
        let expect = 0.01 * 4.0;
        assert!((sd / expect - 1.0).abs() < 0.1, "sd {sd} expect {expect}");
        assert!((stats::mean(&depths) - 2.0).abs() < 0.01);
    }

    #[test]
    fn dropout_fraction() {
        let n = DepthNoise {
            sigma_at_1m: 0.0,
            dropout_prob: 0.3,
        };
        let mut img = flat_image(1.5);
        let mut rng = Pcg32::seed_from_u64(2);
        n.apply(&mut img, &mut rng);
        let frac = img.valid_count() as f64 / (64.0 * 64.0);
        assert!((frac - 0.7).abs() < 0.05, "valid fraction {frac}");
    }

    #[test]
    fn none_model_is_identity() {
        let n = DepthNoise::none();
        let mut img = flat_image(2.5);
        let before = img.clone();
        let mut rng = Pcg32::seed_from_u64(3);
        n.apply(&mut img, &mut rng);
        assert_eq!(img, before);
    }

    #[test]
    fn missing_pixels_stay_missing() {
        let n = DepthNoise::kinect_like();
        let mut img = DepthImage::new(8, 8);
        let mut rng = Pcg32::seed_from_u64(4);
        n.apply(&mut img, &mut rng);
        assert_eq!(img.valid_count(), 0);
    }
}
