//! Camera/drone trajectory generators.
//!
//! All generators return dense pose sequences with the camera oriented
//! toward a gaze target, mimicking how the RGB-D Scenes v2 sequences orbit
//! their tabletop scenes.

use crate::{Result, SceneError};
use navicim_math::geom::{Pose, Vec3};
use navicim_math::rng::{Rng64, SampleExt};

/// An orbit around `center` at the given radius and height, gazing at the
/// centre. `turns` may be fractional.
///
/// # Errors
///
/// Returns [`SceneError::InvalidArgument`] for a non-positive radius or
/// fewer than 2 frames.
pub fn orbit(
    center: Vec3,
    radius: f64,
    height: f64,
    turns: f64,
    frames: usize,
) -> Result<Vec<Pose>> {
    if radius <= 0.0 {
        return Err(SceneError::InvalidArgument(
            "orbit radius must be positive".into(),
        ));
    }
    if frames < 2 {
        return Err(SceneError::InvalidArgument(
            "orbit requires at least 2 frames".into(),
        ));
    }
    Ok((0..frames)
        .map(|i| {
            let theta = turns * 2.0 * std::f64::consts::PI * i as f64 / (frames - 1) as f64;
            let eye = center + Vec3::new(radius * theta.cos(), radius * theta.sin(), height);
            Pose::looking_at(eye, center, Vec3::Z)
        })
        .collect())
}

/// A lawnmower (boustrophedon) sweep over a rectangle at fixed height,
/// gazing at `gaze`.
///
/// # Errors
///
/// Returns [`SceneError::InvalidArgument`] for degenerate sweep parameters.
pub fn lawnmower(
    half_extent: f64,
    height: f64,
    rows: usize,
    frames_per_row: usize,
    gaze: Vec3,
) -> Result<Vec<Pose>> {
    if half_extent <= 0.0 || rows < 2 || frames_per_row < 2 {
        return Err(SceneError::InvalidArgument(
            "lawnmower requires positive extent, >=2 rows and >=2 frames per row".into(),
        ));
    }
    let mut poses = Vec::with_capacity(rows * frames_per_row);
    for r in 0..rows {
        let y = -half_extent + 2.0 * half_extent * r as f64 / (rows - 1) as f64;
        for f in 0..frames_per_row {
            let frac = f as f64 / (frames_per_row - 1) as f64;
            let x = if r % 2 == 0 {
                -half_extent + 2.0 * half_extent * frac
            } else {
                half_extent - 2.0 * half_extent * frac
            };
            let eye = Vec3::new(x, y, height);
            poses.push(Pose::looking_at(eye, gaze, Vec3::Z));
        }
    }
    Ok(poses)
}

/// A smooth random walk through an axis-aligned flight box, gazing at
/// `gaze`: random waypoints connected by Catmull-Rom-interpolated arcs.
///
/// # Errors
///
/// Returns [`SceneError::InvalidArgument`] for degenerate parameters.
pub fn random_waypoints<R: Rng64 + ?Sized>(
    box_min: Vec3,
    box_max: Vec3,
    waypoints: usize,
    frames_per_segment: usize,
    gaze: Vec3,
    rng: &mut R,
) -> Result<Vec<Pose>> {
    if waypoints < 2 || frames_per_segment < 1 {
        return Err(SceneError::InvalidArgument(
            "need at least 2 waypoints and 1 frame per segment".into(),
        ));
    }
    if !(box_min.x < box_max.x && box_min.y < box_max.y && box_min.z < box_max.z) {
        return Err(SceneError::InvalidArgument(
            "flight box must be non-degenerate".into(),
        ));
    }
    let sample_point = |rng: &mut R| {
        Vec3::new(
            rng.sample_uniform(box_min.x, box_max.x),
            rng.sample_uniform(box_min.y, box_max.y),
            rng.sample_uniform(box_min.z, box_max.z),
        )
    };
    let pts: Vec<Vec3> = (0..waypoints).map(|_| sample_point(rng)).collect();
    // Catmull-Rom needs phantom endpoints.
    let mut ctrl = Vec::with_capacity(waypoints + 2);
    ctrl.push(pts[0] + (pts[0] - pts[1]));
    ctrl.extend_from_slice(&pts);
    ctrl.push(pts[waypoints - 1] + (pts[waypoints - 1] - pts[waypoints - 2]));

    let mut poses = Vec::new();
    for seg in 0..(waypoints - 1) {
        let (p0, p1, p2, p3) = (ctrl[seg], ctrl[seg + 1], ctrl[seg + 2], ctrl[seg + 3]);
        for f in 0..frames_per_segment {
            let t = f as f64 / frames_per_segment as f64;
            let eye = catmull_rom(p0, p1, p2, p3, t);
            poses.push(Pose::looking_at(eye, gaze, Vec3::Z));
        }
    }
    // Close with the final waypoint.
    poses.push(Pose::looking_at(pts[waypoints - 1], gaze, Vec3::Z));
    Ok(poses)
}

fn catmull_rom(p0: Vec3, p1: Vec3, p2: Vec3, p3: Vec3, t: f64) -> Vec3 {
    let t2 = t * t;
    let t3 = t2 * t;
    (p1 * 2.0
        + (p2 - p0) * t
        + (p0 * 2.0 - p1 * 5.0 + p2 * 4.0 - p3) * t2
        + (p1 * 3.0 - p0 - p2 * 3.0 + p3) * t3)
        * 0.5
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_math::rng::Pcg32;

    #[test]
    fn orbit_stays_on_circle_and_gazes_center() {
        let center = Vec3::new(0.0, 0.0, 0.75);
        let poses = orbit(center, 2.0, 1.0, 1.0, 60).unwrap();
        assert_eq!(poses.len(), 60);
        for p in &poses {
            let dxy = ((p.translation.x - center.x).powi(2) + (p.translation.y - center.y).powi(2))
                .sqrt();
            assert!((dxy - 2.0).abs() < 1e-9);
            // Gaze: center on the optical axis.
            let cam = p.inverse_transform_point(center);
            assert!(cam.x.abs() < 1e-9 && cam.y.abs() < 1e-9 && cam.z > 0.0);
        }
    }

    #[test]
    fn orbit_full_turn_closes() {
        let poses = orbit(Vec3::ZERO, 1.0, 0.5, 1.0, 30).unwrap();
        let first = poses.first().unwrap().translation;
        let last = poses.last().unwrap().translation;
        assert!(first.distance(last) < 1e-9);
    }

    #[test]
    fn lawnmower_alternates_direction() {
        let poses = lawnmower(1.0, 0.5, 2, 5, Vec3::ZERO).unwrap();
        assert_eq!(poses.len(), 10);
        // Row 0 goes -x → +x; row 1 goes +x → -x.
        assert!(poses[0].translation.x < poses[4].translation.x);
        assert!(poses[5].translation.x > poses[9].translation.x);
    }

    #[test]
    fn random_waypoints_stay_near_box() {
        let mut rng = Pcg32::seed_from_u64(1);
        let lo = Vec3::new(-1.0, -1.0, 0.5);
        let hi = Vec3::new(1.0, 1.0, 1.5);
        let poses = random_waypoints(lo, hi, 5, 10, Vec3::ZERO, &mut rng).unwrap();
        assert_eq!(poses.len(), 41);
        // Catmull-Rom can overshoot slightly; allow a margin.
        for p in &poses {
            let t = p.translation;
            assert!(t.x > -1.6 && t.x < 1.6, "{t:?}");
            assert!(t.z > -0.2 && t.z < 2.2, "{t:?}");
        }
    }

    #[test]
    fn trajectories_are_smooth() {
        let mut rng = Pcg32::seed_from_u64(2);
        let poses = random_waypoints(
            Vec3::new(-1.0, -1.0, 0.5),
            Vec3::new(1.0, 1.0, 1.5),
            4,
            20,
            Vec3::ZERO,
            &mut rng,
        )
        .unwrap();
        // Consecutive steps should be small relative to the box size.
        for w in poses.windows(2) {
            let step = w[0].translation.distance(w[1].translation);
            assert!(step < 0.5, "step {step}");
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut rng = Pcg32::seed_from_u64(3);
        assert!(orbit(Vec3::ZERO, 0.0, 1.0, 1.0, 10).is_err());
        assert!(orbit(Vec3::ZERO, 1.0, 1.0, 1.0, 1).is_err());
        assert!(lawnmower(1.0, 0.5, 1, 5, Vec3::ZERO).is_err());
        assert!(random_waypoints(Vec3::ZERO, Vec3::ZERO, 3, 5, Vec3::ZERO, &mut rng).is_err());
    }
}
