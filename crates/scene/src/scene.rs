//! Scene container and procedural generators.

use crate::primitives::Shape;
use crate::{Result, SceneError};
use navicim_math::geom::{Aabb, Ray, Vec3};
use navicim_math::rng::{Rng64, SampleExt};

/// A static scene: a collection of solid shapes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Scene {
    shapes: Vec<Shape>,
}

impl Scene {
    /// Creates an empty scene.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a shape, returning `&mut self` for chaining.
    pub fn add(&mut self, shape: Shape) -> &mut Self {
        self.shapes.push(shape);
        self
    }

    /// Shapes in the scene.
    pub fn shapes(&self) -> &[Shape] {
        &self.shapes
    }

    /// Number of shapes.
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// Returns `true` when the scene has no shapes.
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// Nearest intersection of `ray` with any shape: `(distance, index)`.
    pub fn intersect(&self, ray: Ray) -> Option<(f64, usize)> {
        let mut best: Option<(f64, usize)> = None;
        for (i, s) in self.shapes.iter().enumerate() {
            if let Some(t) = s.intersect(ray) {
                if best.map(|(bt, _)| t < bt).unwrap_or(true) {
                    best = Some((t, i));
                }
            }
        }
        best
    }

    /// Bounding box of the whole scene.
    ///
    /// # Errors
    ///
    /// Returns [`SceneError::Empty`] for an empty scene.
    pub fn bounding_box(&self) -> Result<Aabb> {
        let mut iter = self.shapes.iter();
        let first = iter
            .next()
            .ok_or_else(|| SceneError::Empty("scene has no shapes".into()))?;
        let mut bb = first.bounding_box();
        for s in iter {
            let b = s.bounding_box();
            bb = bb.expand(b.min).expand(b.max);
        }
        Ok(bb)
    }

    /// Samples `n` points on scene surfaces, area-weighted across shapes —
    /// the synthetic stand-in for a registered Kinect point cloud.
    ///
    /// # Errors
    ///
    /// Returns [`SceneError::Empty`] for an empty scene.
    pub fn sample_surface_points<R: Rng64 + ?Sized>(
        &self,
        n: usize,
        rng: &mut R,
    ) -> Result<Vec<Vec3>> {
        if self.shapes.is_empty() {
            return Err(SceneError::Empty("scene has no shapes".into()));
        }
        let areas: Vec<f64> = self.shapes.iter().map(|s| s.surface_area()).collect();
        Ok((0..n)
            .map(|_| {
                let i = rng.sample_weighted(&areas);
                self.shapes[i].sample_surface(rng)
            })
            .collect())
    }
}

/// Parameters for the procedural tabletop scene generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TabletopParams {
    /// Room half-extent in X and Y (room spans ±this).
    pub room_half: f64,
    /// Room height.
    pub room_height: f64,
    /// Table top size (square side length).
    pub table_size: f64,
    /// Table height.
    pub table_height: f64,
    /// Number of objects placed on the table.
    pub num_objects: usize,
}

impl Default for TabletopParams {
    fn default() -> Self {
        Self {
            room_half: 2.5,
            room_height: 2.4,
            table_size: 1.2,
            table_height: 0.75,
            num_objects: 5,
        }
    }
}

/// Generates a tabletop scene in the spirit of the RGB-D Scenes v2 dataset:
/// a room (floor + three walls) containing a table with small objects
/// (boxes, cans, balls) on top.
///
/// # Errors
///
/// Returns [`SceneError::InvalidArgument`] for non-positive dimensions.
pub fn tabletop_scene<R: Rng64 + ?Sized>(params: &TabletopParams, rng: &mut R) -> Result<Scene> {
    if params.room_half <= 0.0
        || params.room_height <= 0.0
        || params.table_size <= 0.0
        || params.table_height <= 0.0
    {
        return Err(SceneError::InvalidArgument(
            "tabletop dimensions must be positive".into(),
        ));
    }
    let h = params.room_half;
    let mut scene = Scene::new();
    let wall = 0.05;
    // Floor.
    scene.add(Shape::Cuboid(Aabb::new(
        Vec3::new(-h, -h, -wall),
        Vec3::new(h, h, 0.0),
    )));
    // Three walls (one side left open so the camera can orbit in).
    scene.add(Shape::Cuboid(Aabb::new(
        Vec3::new(-h, h, 0.0),
        Vec3::new(h, h + wall, params.room_height),
    )));
    scene.add(Shape::Cuboid(Aabb::new(
        Vec3::new(-h - wall, -h, 0.0),
        Vec3::new(-h, h, params.room_height),
    )));
    scene.add(Shape::Cuboid(Aabb::new(
        Vec3::new(h, -h, 0.0),
        Vec3::new(h + wall, h, params.room_height),
    )));
    // Table: top slab + central pedestal.
    let ts = params.table_size * 0.5;
    let th = params.table_height;
    scene.add(Shape::Cuboid(Aabb::new(
        Vec3::new(-ts, -ts, th - 0.05),
        Vec3::new(ts, ts, th),
    )));
    scene.add(Shape::Cuboid(Aabb::new(
        Vec3::new(-0.08, -0.08, 0.0),
        Vec3::new(0.08, 0.08, th - 0.05),
    )));
    // Objects on the table.
    for _ in 0..params.num_objects {
        let x = rng.sample_uniform(-ts * 0.8, ts * 0.8);
        let y = rng.sample_uniform(-ts * 0.8, ts * 0.8);
        match rng.sample_index(3) {
            0 => {
                let r = rng.sample_uniform(0.03, 0.08);
                scene.add(Shape::Sphere {
                    center: Vec3::new(x, y, th + r),
                    radius: r,
                });
            }
            1 => {
                let r = rng.sample_uniform(0.03, 0.06);
                let height = rng.sample_uniform(0.08, 0.2);
                scene.add(Shape::Cylinder {
                    base: Vec3::new(x, y, th),
                    radius: r,
                    height,
                });
            }
            _ => {
                let sx = rng.sample_uniform(0.04, 0.12);
                let sy = rng.sample_uniform(0.04, 0.12);
                let sz = rng.sample_uniform(0.05, 0.2);
                scene.add(Shape::Cuboid(Aabb::new(
                    Vec3::new(x - sx * 0.5, y - sy * 0.5, th),
                    Vec3::new(x + sx * 0.5, y + sy * 0.5, th + sz),
                )));
            }
        }
    }
    Ok(scene)
}

/// Generates a cluttered room scene (for larger flying domains): a floor,
/// four walls and `num_obstacles` free-standing obstacles.
///
/// # Errors
///
/// Returns [`SceneError::InvalidArgument`] for non-positive dimensions.
pub fn room_scene<R: Rng64 + ?Sized>(
    half_extent: f64,
    height: f64,
    num_obstacles: usize,
    rng: &mut R,
) -> Result<Scene> {
    if half_extent <= 0.0 || height <= 0.0 {
        return Err(SceneError::InvalidArgument(
            "room dimensions must be positive".into(),
        ));
    }
    let h = half_extent;
    let wall = 0.05;
    let mut scene = Scene::new();
    scene.add(Shape::Cuboid(Aabb::new(
        Vec3::new(-h, -h, -wall),
        Vec3::new(h, h, 0.0),
    )));
    for (lo, hi) in [
        (Vec3::new(-h, h, 0.0), Vec3::new(h, h + wall, height)),
        (Vec3::new(-h, -h - wall, 0.0), Vec3::new(h, -h, height)),
        (Vec3::new(-h - wall, -h, 0.0), Vec3::new(-h, h, height)),
        (Vec3::new(h, -h, 0.0), Vec3::new(h + wall, h, height)),
    ] {
        scene.add(Shape::Cuboid(Aabb::new(lo, hi)));
    }
    for _ in 0..num_obstacles {
        let x = rng.sample_uniform(-h * 0.7, h * 0.7);
        let y = rng.sample_uniform(-h * 0.7, h * 0.7);
        match rng.sample_index(2) {
            0 => {
                let r = rng.sample_uniform(0.1, 0.3);
                let obj_h = rng.sample_uniform(0.5, height * 0.8);
                scene.add(Shape::Cylinder {
                    base: Vec3::new(x, y, 0.0),
                    radius: r,
                    height: obj_h,
                });
            }
            _ => {
                let s = rng.sample_uniform(0.15, 0.45);
                let obj_h = rng.sample_uniform(0.3, height * 0.7);
                scene.add(Shape::Cuboid(Aabb::new(
                    Vec3::new(x - s, y - s, 0.0),
                    Vec3::new(x + s, y + s, obj_h),
                )));
            }
        }
    }
    Ok(scene)
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_math::rng::Pcg32;

    #[test]
    fn tabletop_has_expected_structure() {
        let mut rng = Pcg32::seed_from_u64(1);
        let params = TabletopParams::default();
        let scene = tabletop_scene(&params, &mut rng).unwrap();
        // floor + 3 walls + tabletop + pedestal + objects
        assert_eq!(scene.len(), 6 + params.num_objects);
        let bb = scene.bounding_box().unwrap();
        assert!(bb.min.z <= 0.0 && bb.max.z >= params.table_height);
    }

    #[test]
    fn invalid_params_rejected() {
        let mut rng = Pcg32::seed_from_u64(2);
        let bad = TabletopParams {
            room_half: -1.0,
            ..TabletopParams::default()
        };
        assert!(tabletop_scene(&bad, &mut rng).is_err());
        assert!(room_scene(0.0, 2.0, 3, &mut rng).is_err());
    }

    #[test]
    fn intersect_returns_nearest() {
        let mut scene = Scene::new();
        scene.add(Shape::Sphere {
            center: Vec3::new(0.0, 0.0, 5.0),
            radius: 1.0,
        });
        scene.add(Shape::Sphere {
            center: Vec3::new(0.0, 0.0, 10.0),
            radius: 1.0,
        });
        let (t, idx) = scene.intersect(Ray::new(Vec3::ZERO, Vec3::Z)).unwrap();
        assert_eq!(idx, 0);
        assert!((t - 4.0).abs() < 1e-12);
    }

    #[test]
    fn surface_points_lie_in_bounding_box() {
        let mut rng = Pcg32::seed_from_u64(3);
        let scene = tabletop_scene(&TabletopParams::default(), &mut rng).unwrap();
        let bb = scene.bounding_box().unwrap();
        let pts = scene.sample_surface_points(500, &mut rng).unwrap();
        assert_eq!(pts.len(), 500);
        for p in pts {
            assert!(bb.contains(p), "{p:?}");
        }
    }

    #[test]
    fn empty_scene_errors() {
        let scene = Scene::new();
        assert!(scene.bounding_box().is_err());
        let mut rng = Pcg32::seed_from_u64(4);
        assert!(scene.sample_surface_points(10, &mut rng).is_err());
        assert!(scene.is_empty());
    }

    #[test]
    fn room_scene_obstacle_count() {
        let mut rng = Pcg32::seed_from_u64(5);
        let scene = room_scene(3.0, 2.5, 7, &mut rng).unwrap();
        assert_eq!(scene.len(), 5 + 7);
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = Pcg32::seed_from_u64(6);
        let mut b = Pcg32::seed_from_u64(6);
        let sa = tabletop_scene(&TabletopParams::default(), &mut a).unwrap();
        let sb = tabletop_scene(&TabletopParams::default(), &mut b).unwrap();
        assert_eq!(sa, sb);
    }
}
