//! Bundled synthetic datasets for the two experiment pipelines.
//!
//! - [`LocalizationDataset`]: a scene, its surface point cloud (the "map
//!   scan"), and a trajectory of noisy depth frames with ground-truth
//!   poses — the Section II workload.
//! - [`VoDataset`]: consecutive-frame feature/target pairs for training and
//!   evaluating the visual-odometry regressor — the Section III workload.

use crate::camera::{DepthCamera, DepthImage};
use crate::noise::DepthNoise;
use crate::scene::{tabletop_scene, Scene, TabletopParams};
use crate::trajectory::{orbit, random_waypoints};
use crate::{Result, SceneError};
use navicim_math::geom::{Pose, Vec3};
use navicim_math::rng::Pcg32;

/// One observation: ground-truth pose plus the (noisy) depth image
/// captured there.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Ground-truth camera pose (body-to-world).
    pub pose: Pose,
    /// Captured depth image.
    pub depth: DepthImage,
}

/// Configuration for [`LocalizationDataset::generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalizationConfig {
    /// Scene generator parameters.
    pub tabletop: TabletopParams,
    /// Depth image width.
    pub image_width: usize,
    /// Depth image height.
    pub image_height: usize,
    /// Number of map point-cloud samples.
    pub map_points: usize,
    /// Number of trajectory frames.
    pub frames: usize,
    /// Orbit radius for the capture trajectory.
    pub orbit_radius: f64,
    /// Orbit height above the scene centre.
    pub orbit_height: f64,
    /// Sensor noise model.
    pub noise: DepthNoise,
}

impl Default for LocalizationConfig {
    fn default() -> Self {
        Self {
            tabletop: TabletopParams::default(),
            image_width: 48,
            image_height: 36,
            map_points: 3000,
            frames: 40,
            orbit_radius: 1.8,
            orbit_height: 0.6,
            noise: DepthNoise::kinect_like(),
        }
    }
}

/// The Section II workload: scene, map cloud and a captured trajectory.
#[derive(Debug, Clone)]
pub struct LocalizationDataset {
    /// The underlying scene.
    pub scene: Scene,
    /// Surface point cloud used to fit map mixture models.
    pub map_points: Vec<Vec3>,
    /// Captured frames along the trajectory.
    pub frames: Vec<Frame>,
    /// The camera that captured the frames.
    pub camera: DepthCamera,
}

impl LocalizationDataset {
    /// Generates a dataset deterministically from a seed.
    ///
    /// # Errors
    ///
    /// Propagates scene/trajectory/rendering errors.
    pub fn generate(config: &LocalizationConfig, seed: u64) -> Result<Self> {
        let mut rng = Pcg32::seed_from_u64(seed);
        let scene = tabletop_scene(&config.tabletop, &mut rng)?;
        let map_points = scene.sample_surface_points(config.map_points, &mut rng)?;
        let camera = DepthCamera::kinect_like(config.image_width, config.image_height);
        let gaze = Vec3::new(0.0, 0.0, config.tabletop.table_height);
        let poses = orbit(
            gaze,
            config.orbit_radius,
            config.orbit_height,
            1.0,
            config.frames,
        )?;
        let mut frames = Vec::with_capacity(poses.len());
        for pose in poses {
            let mut depth = camera.render(&scene, pose)?;
            config.noise.apply(&mut depth, &mut rng);
            frames.push(Frame { pose, depth });
        }
        Ok(Self {
            scene,
            map_points,
            frames,
            camera,
        })
    }

    /// Map point cloud as `Vec<f64>` rows (for the mixture fitters).
    pub fn map_points_as_rows(&self) -> Vec<Vec<f64>> {
        self.map_points
            .iter()
            .map(|p| vec![p.x, p.y, p.z])
            .collect()
    }

    /// Ground-truth frame-to-frame relative poses, one per tracked frame
    /// (`frames.len() - 1` deltas): the odometry controls an open-loop
    /// (ground-truth-driven) run feeds the motion model, and the
    /// per-frame reference a closed-loop run's visual-odometry controls
    /// are measured against.
    pub fn control_deltas(&self) -> Vec<Pose> {
        self.frames
            .windows(2)
            .map(|w| w[0].pose.delta_to(w[1].pose))
            .collect()
    }
}

/// One supervised VO sample: features from a frame pair, 6-DoF delta
/// target.
#[derive(Debug, Clone, PartialEq)]
pub struct VoSample {
    /// Concatenated grid features: previous frame, current frame and
    /// their difference (the motion cue).
    pub features: Vec<f64>,
    /// Relative pose `[dx, dy, dz, droll, dpitch, dyaw]` in the previous
    /// body frame.
    pub target: [f64; 6],
}

/// Trajectory family for VO capture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VoTrajectory {
    /// Constant-rate orbit (smooth, nearly constant frame deltas).
    Orbit,
    /// Smooth random-waypoint flight (varied frame deltas) through a box
    /// around the scene; the parameter is the number of waypoints.
    Waypoints(usize),
}

/// Configuration for [`VoDataset::generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoConfig {
    /// Scene generator parameters.
    pub tabletop: TabletopParams,
    /// Depth image width.
    pub image_width: usize,
    /// Depth image height.
    pub image_height: usize,
    /// Feature grid width.
    pub grid_width: usize,
    /// Feature grid height.
    pub grid_height: usize,
    /// Number of trajectory frames.
    pub frames: usize,
    /// Orbit radius.
    pub orbit_radius: f64,
    /// Orbit height.
    pub orbit_height: f64,
    /// Number of orbit turns across the trajectory.
    pub turns: f64,
    /// Trajectory family.
    pub trajectory: VoTrajectory,
    /// Sensor noise model.
    pub noise: DepthNoise,
}

impl Default for VoConfig {
    fn default() -> Self {
        Self {
            tabletop: TabletopParams::default(),
            image_width: 48,
            image_height: 36,
            grid_width: 8,
            grid_height: 6,
            frames: 120,
            orbit_radius: 1.8,
            orbit_height: 0.6,
            turns: 1.0,
            trajectory: VoTrajectory::Waypoints(8),
            noise: DepthNoise::kinect_like(),
        }
    }
}

/// The Section III workload: frames plus supervised frame-pair samples.
#[derive(Debug, Clone)]
pub struct VoDataset {
    /// Captured frames (ground truth included).
    pub frames: Vec<Frame>,
    /// Per-consecutive-pair supervised samples (`frames.len() - 1`).
    pub samples: Vec<VoSample>,
    /// Feature grid dimensions `(width, height)`.
    pub grid: (usize, usize),
    /// The capturing camera.
    pub camera: DepthCamera,
}

impl VoDataset {
    /// Generates a dataset deterministically from a seed.
    ///
    /// # Errors
    ///
    /// Propagates scene/trajectory/rendering errors and rejects fewer than
    /// two frames.
    pub fn generate(config: &VoConfig, seed: u64) -> Result<Self> {
        if config.frames < 2 {
            return Err(SceneError::InvalidArgument(
                "vo dataset requires at least 2 frames".into(),
            ));
        }
        let mut rng = Pcg32::seed_from_u64(seed);
        let scene = tabletop_scene(&config.tabletop, &mut rng)?;
        let camera = DepthCamera::kinect_like(config.image_width, config.image_height);
        let gaze = Vec3::new(0.0, 0.0, config.tabletop.table_height);
        let poses = match config.trajectory {
            VoTrajectory::Orbit => orbit(
                gaze,
                config.orbit_radius,
                config.orbit_height,
                config.turns,
                config.frames,
            )?,
            VoTrajectory::Waypoints(n) => {
                let r = config.orbit_radius;
                let lo = Vec3::new(-r, -r, config.orbit_height * 0.6 + gaze.z);
                let hi = Vec3::new(r, r, config.orbit_height * 1.4 + gaze.z);
                // Keep roughly the requested frame count.
                let per_segment = (config.frames / n.max(2).saturating_sub(1)).max(1);
                let mut poses = random_waypoints(lo, hi, n.max(2), per_segment, gaze, &mut rng)?;
                poses.truncate(config.frames.max(2));
                poses
            }
        };
        let mut frames = Vec::with_capacity(poses.len());
        for pose in poses {
            let mut depth = camera.render(&scene, pose)?;
            config.noise.apply(&mut depth, &mut rng);
            frames.push(Frame { pose, depth });
        }
        let samples = make_samples(&frames, &camera, config.grid_width, config.grid_height);
        Ok(Self {
            frames,
            samples,
            grid: (config.grid_width, config.grid_height),
            camera,
        })
    }

    /// Feature dimensionality of each sample.
    pub fn feature_dim(&self) -> usize {
        3 * self.grid.0 * self.grid.1
    }

    /// Splits the samples into `(train, test)` at the given fraction.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < train_frac < 1`.
    pub fn split(&self, train_frac: f64) -> (Vec<VoSample>, Vec<VoSample>) {
        assert!(
            train_frac > 0.0 && train_frac < 1.0,
            "train fraction must be in (0, 1)"
        );
        let n_train = ((self.samples.len() as f64) * train_frac).round() as usize;
        let n_train = n_train.clamp(1, self.samples.len().saturating_sub(1));
        (
            self.samples[..n_train].to_vec(),
            self.samples[n_train..].to_vec(),
        )
    }
}

/// Builds the grid-feature/relative-pose samples for consecutive frames.
pub fn make_samples(
    frames: &[Frame],
    camera: &DepthCamera,
    grid_w: usize,
    grid_h: usize,
) -> Vec<VoSample> {
    let normalize =
        |g: Vec<f64>| -> Vec<f64> { g.into_iter().map(|d| d / camera.max_range).collect() };
    frames
        .windows(2)
        .map(|w| {
            let prev_grid = normalize(w[0].depth.grid_means(grid_w, grid_h));
            let curr_grid = normalize(w[1].depth.grid_means(grid_w, grid_h));
            let diff: Vec<f64> = curr_grid
                .iter()
                .zip(&prev_grid)
                .map(|(c, p)| c - p)
                .collect();
            let mut features = prev_grid;
            features.extend(curr_grid);
            features.extend(diff);
            let delta = w[0].pose.delta_to(w[1].pose);
            let (roll, pitch, yaw) = delta.rotation.to_euler();
            VoSample {
                features,
                target: [
                    delta.translation.x,
                    delta.translation.y,
                    delta.translation.z,
                    roll,
                    pitch,
                    yaw,
                ],
            }
        })
        .collect()
}

/// Integrates predicted 6-DoF deltas from `start`, returning the absolute
/// trajectory (length `deltas.len() + 1`).
pub fn integrate_deltas(start: Pose, deltas: &[[f64; 6]]) -> Vec<Pose> {
    let mut poses = Vec::with_capacity(deltas.len() + 1);
    poses.push(start);
    let mut current = start;
    for d in deltas {
        let delta = Pose::from_position_euler(Vec3::new(d[0], d[1], d[2]), d[3], d[4], d[5]);
        current = current.compose(delta);
        poses.push(current);
    }
    poses
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_math::metrics::trajectory_error;

    fn small_loc_config() -> LocalizationConfig {
        LocalizationConfig {
            image_width: 24,
            image_height: 18,
            map_points: 500,
            frames: 8,
            ..LocalizationConfig::default()
        }
    }

    fn small_vo_config() -> VoConfig {
        VoConfig {
            image_width: 24,
            image_height: 18,
            grid_width: 4,
            grid_height: 3,
            frames: 10,
            turns: 0.2,
            trajectory: VoTrajectory::Orbit,
            ..VoConfig::default()
        }
    }

    #[test]
    fn localization_dataset_shapes() {
        let ds = LocalizationDataset::generate(&small_loc_config(), 1).unwrap();
        assert_eq!(ds.map_points.len(), 500);
        assert_eq!(ds.frames.len(), 8);
        // Frames see the scene.
        for f in &ds.frames {
            assert!(f.depth.valid_count() > 20, "frame sees too little");
        }
        assert_eq!(ds.map_points_as_rows()[0].len(), 3);
    }

    #[test]
    fn localization_dataset_deterministic() {
        let a = LocalizationDataset::generate(&small_loc_config(), 42).unwrap();
        let b = LocalizationDataset::generate(&small_loc_config(), 42).unwrap();
        assert_eq!(a.map_points, b.map_points);
        assert_eq!(a.frames[3], b.frames[3]);
        let c = LocalizationDataset::generate(&small_loc_config(), 43).unwrap();
        assert_ne!(a.map_points, c.map_points);
    }

    #[test]
    fn control_deltas_match_pairwise_ground_truth() {
        let ds = LocalizationDataset::generate(&small_loc_config(), 9).unwrap();
        let deltas = ds.control_deltas();
        assert_eq!(deltas.len(), ds.frames.len() - 1);
        for (t, d) in deltas.iter().enumerate() {
            let expect = ds.frames[t].pose.delta_to(ds.frames[t + 1].pose);
            assert_eq!(*d, expect);
            // Composing the delta back onto the previous pose recovers
            // the next ground-truth pose.
            let recon = ds.frames[t].pose.compose(*d);
            assert!(recon.translation_distance(ds.frames[t + 1].pose) < 1e-9);
        }
    }

    #[test]
    fn vo_dataset_shapes() {
        let ds = VoDataset::generate(&small_vo_config(), 2).unwrap();
        assert_eq!(ds.frames.len(), 10);
        assert_eq!(ds.samples.len(), 9);
        assert_eq!(ds.feature_dim(), 36);
        for s in &ds.samples {
            assert_eq!(s.features.len(), 36);
            // Normalized features stay in [-1, ~1] (differences can dip
            // below zero).
            assert!(s.features.iter().all(|&f| (-1.5..=1.5).contains(&f)));
        }
    }

    #[test]
    fn vo_targets_integrate_back_to_ground_truth() {
        let ds = VoDataset::generate(
            &VoConfig {
                noise: DepthNoise::none(),
                ..small_vo_config()
            },
            3,
        )
        .unwrap();
        let deltas: Vec<[f64; 6]> = ds.samples.iter().map(|s| s.target).collect();
        let recon = integrate_deltas(ds.frames[0].pose, &deltas);
        let truth: Vec<Pose> = ds.frames.iter().map(|f| f.pose).collect();
        let err = trajectory_error(&recon, &truth);
        assert!(err.ate_rmse < 1e-9, "integration drift {}", err.ate_rmse);
    }

    #[test]
    fn split_fractions() {
        let ds = VoDataset::generate(&small_vo_config(), 4).unwrap();
        let (train, test) = ds.split(0.7);
        assert_eq!(train.len() + test.len(), ds.samples.len());
        assert!(!train.is_empty() && !test.is_empty());
    }

    #[test]
    fn too_few_frames_rejected() {
        let bad = VoConfig {
            frames: 1,
            ..small_vo_config()
        };
        assert!(VoDataset::generate(&bad, 5).is_err());
    }

    #[test]
    fn waypoint_trajectory_varies_deltas() {
        let config = VoConfig {
            trajectory: VoTrajectory::Waypoints(5),
            frames: 40,
            ..small_vo_config()
        };
        let ds = VoDataset::generate(&config, 11).unwrap();
        assert!(ds.frames.len() >= 2);
        // Frame deltas are NOT constant (unlike a steady orbit).
        let mags: Vec<f64> = ds
            .samples
            .iter()
            .map(|s| (s.target[0].powi(2) + s.target[1].powi(2) + s.target[2].powi(2)).sqrt())
            .collect();
        let spread = navicim_math::stats::std_dev(&mags);
        assert!(spread > 1e-4, "delta spread {spread}");
        // Integration still reproduces ground truth exactly.
        let noiseless = VoConfig {
            noise: DepthNoise::none(),
            ..config
        };
        let ds = VoDataset::generate(&noiseless, 12).unwrap();
        let deltas: Vec<[f64; 6]> = ds.samples.iter().map(|s| s.target).collect();
        let recon = integrate_deltas(ds.frames[0].pose, &deltas);
        let truth: Vec<Pose> = ds.frames.iter().map(|f| f.pose).collect();
        assert!(trajectory_error(&recon, &truth).ate_rmse < 1e-9);
    }

    #[test]
    fn deltas_are_small_between_consecutive_frames() {
        let ds = VoDataset::generate(&small_vo_config(), 6).unwrap();
        for s in &ds.samples {
            let t = (s.target[0].powi(2) + s.target[1].powi(2) + s.target[2].powi(2)).sqrt();
            assert!(t < 0.5, "translation step {t}");
        }
    }
}
