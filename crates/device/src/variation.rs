//! Process-variation sampling.
//!
//! Fabricated devices deviate from their nominal parameters: threshold
//! voltages scatter with a Pelgrom-style σ and transconductance factors
//! carry a relative error. The paper (Fig. 1) lists such non-idealities as
//! one of the uncertainty sources that its Bayesian frameworks must absorb,
//! and Section III's RNG actively *exploits* the mismatch statistics. This
//! module centralizes the sampling of those deviations.

use crate::inverter::GaussianLikeCell;
use crate::params::TechParams;
use navicim_math::rng::{Rng64, SampleExt};

/// Per-device mismatch sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeviceMismatch {
    /// Threshold-voltage deviation in volts.
    pub dvth: f64,
    /// Relative transconductance deviation (unitless).
    pub dbeta: f64,
}

/// Process-variation model: draws correlated per-device mismatches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessVariation {
    sigma_vth: f64,
    sigma_beta: f64,
    /// Scale factor applied to both sigmas (1.0 = nominal process).
    severity: f64,
}

impl ProcessVariation {
    /// Creates a variation model from the technology's mismatch parameters.
    pub fn from_tech(tech: &TechParams) -> Self {
        Self {
            sigma_vth: tech.sigma_vth,
            sigma_beta: tech.sigma_beta,
            severity: 1.0,
        }
    }

    /// Creates a variation model with explicit sigmas.
    pub fn new(sigma_vth: f64, sigma_beta: f64) -> Self {
        Self {
            sigma_vth,
            sigma_beta,
            severity: 1.0,
        }
    }

    /// Returns a copy with both sigmas scaled by `severity`
    /// (0 = ideal process, 1 = nominal, >1 = worst-case corners).
    ///
    /// # Panics
    ///
    /// Panics in debug builds for negative severity.
    pub fn with_severity(mut self, severity: f64) -> Self {
        debug_assert!(severity >= 0.0, "severity must be non-negative");
        self.severity = severity;
        self
    }

    /// Effective threshold-mismatch σ in volts.
    pub fn sigma_vth(&self) -> f64 {
        self.sigma_vth * self.severity
    }

    /// Effective relative transconductance-mismatch σ.
    pub fn sigma_beta(&self) -> f64 {
        self.sigma_beta * self.severity
    }

    /// Draws one device's mismatch.
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> DeviceMismatch {
        DeviceMismatch {
            dvth: rng.sample_normal(0.0, self.sigma_vth()),
            dbeta: rng.sample_normal(0.0, self.sigma_beta()),
        }
    }

    /// Applies independent mismatches to both halves of a Gaussian-like
    /// cell, returning the perturbed cell.
    pub fn perturb_cell<R: Rng64 + ?Sized>(
        &self,
        cell: GaussianLikeCell,
        rng: &mut R,
    ) -> GaussianLikeCell {
        let n = self.sample(rng);
        let p = self.sample(rng);
        cell.with_mismatch(n.dvth, p.dvth, n.dbeta, p.dbeta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_math::rng::Pcg32;
    use navicim_math::stats;

    #[test]
    fn sample_statistics_match_sigmas() {
        let pv = ProcessVariation::new(0.02, 0.05);
        let mut rng = Pcg32::seed_from_u64(1);
        let samples: Vec<DeviceMismatch> = (0..20_000).map(|_| pv.sample(&mut rng)).collect();
        let dvths: Vec<f64> = samples.iter().map(|s| s.dvth).collect();
        let dbetas: Vec<f64> = samples.iter().map(|s| s.dbeta).collect();
        assert!((stats::std_dev(&dvths) - 0.02).abs() < 0.001);
        assert!((stats::std_dev(&dbetas) - 0.05).abs() < 0.003);
        assert!(stats::mean(&dvths).abs() < 0.001);
    }

    #[test]
    fn zero_severity_is_ideal() {
        let pv = ProcessVariation::new(0.02, 0.05).with_severity(0.0);
        let mut rng = Pcg32::seed_from_u64(2);
        let s = pv.sample(&mut rng);
        assert_eq!(s.dvth, 0.0);
        assert_eq!(s.dbeta, 0.0);
    }

    #[test]
    fn perturbed_cell_center_scatters() {
        let tech = TechParams::cmos_45nm();
        let pv = ProcessVariation::from_tech(&tech);
        let mut rng = Pcg32::seed_from_u64(3);
        let nominal = GaussianLikeCell::with_center(&tech, 0.5);
        let centers: Vec<f64> = (0..2000)
            .map(|_| pv.perturb_cell(nominal, &mut rng).center())
            .collect();
        let sd = stats::std_dev(&centers);
        // Centre shift is (dvth_n − dvth_p)/2, so σ_center = σ_vth/√2.
        let expect = tech.sigma_vth / 2f64.sqrt();
        assert!((sd / expect - 1.0).abs() < 0.1, "sd {sd} expect {expect}");
    }

    #[test]
    fn from_tech_matches_tech_values() {
        let tech = TechParams::cmos_45nm();
        let pv = ProcessVariation::from_tech(&tech);
        assert_eq!(pv.sigma_vth(), tech.sigma_vth);
        assert_eq!(pv.sigma_beta(), tech.sigma_beta);
    }
}
