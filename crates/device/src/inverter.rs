//! The six-transistor inverter and its Gaussian-like switching current.
//!
//! A CMOS inverter conducts a *switching* (short-circuit) current only while
//! both its NMOS and PMOS halves are on, i.e. for input voltages between the
//! two thresholds. The series composition makes the smaller of the two
//! device currents dominate:
//!
//! `I_cell(V) ≈ 1 / (1/I_n(V) + 1/I_p(V))`
//!
//! With the NMOS current rising (exponentially, then quadratically) in `V`
//! and the PMOS current falling symmetrically, `I_cell` traces a bell centred
//! where the two currents match — the paper's Fig. 2(b). Floating-gate
//! threshold programming moves the bell's centre and width, turning each
//! cell into a programmable 1-D kernel evaluator.
//!
//! Stacking one such cell per input (the paper's V_X, V_Y, V_Z) yields the
//! multi-input inverter whose current is the paper's harmonic composition
//! `1/(1/I_1 + 1/I_2 + 1/I_3)` — a Harmonic-Mean-of-Gaussian-like (HMG)
//! kernel with rectilinear (axis-aligned) tail contours rather than the
//! elliptical contours of a true multivariate Gaussian (Fig. 2(c,d)).

use crate::mosfet::Mosfet;
use crate::params::TechParams;
use crate::{DeviceError, Result};

/// A single programmable Gaussian-like current cell: an NMOS/PMOS pair in
/// series, with both thresholds set by floating gates.
///
/// ```
/// use navicim_device::inverter::GaussianLikeCell;
/// use navicim_device::params::TechParams;
///
/// let tech = TechParams::cmos_45nm();
/// let cell = GaussianLikeCell::with_center(&tech, 0.6);
/// assert!((cell.center() - 0.6).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianLikeCell {
    nmos: Mosfet,
    pmos: Mosfet,
    vdd: f64,
    center: f64,
    overlap: f64,
}

impl GaussianLikeCell {
    /// Default conduction-window width (volts) when only a centre is given.
    pub const DEFAULT_OVERLAP: f64 = 0.3;

    /// Creates a cell with its bell centred at `center` volts and the
    /// default conduction window.
    ///
    /// Out-of-rail centres are clamped to `[0, V_DD]`.
    pub fn with_center(tech: &TechParams, center: f64) -> Self {
        Self::with_center_width(tech, center, Self::DEFAULT_OVERLAP)
            .expect("default overlap is always valid")
    }

    /// Creates a cell with a programmed centre and conduction-window width
    /// (`overlap`, volts). A larger overlap widens the bell.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] when `overlap` is not in
    /// `(0, V_DD]`.
    pub fn with_center_width(tech: &TechParams, center: f64, overlap: f64) -> Result<Self> {
        if !(overlap > 0.0 && overlap <= tech.vdd) {
            return Err(DeviceError::InvalidParameter(format!(
                "overlap must be in (0, vdd], got {overlap}"
            )));
        }
        let center = center.clamp(0.0, tech.vdd);
        // Effective thresholds that place the conduction window of width
        // `overlap` symmetrically around `center`:
        //   vth_n' = center − overlap/2
        //   vth_p' = vdd − center − overlap/2
        let vth_n_eff = center - overlap * 0.5;
        let vth_p_eff = tech.vdd - center - overlap * 0.5;
        let nmos = Mosfet::nmos(tech).with_vth_shift(vth_n_eff - tech.vth_n);
        let pmos = Mosfet::pmos(tech)
            .with_vth_shift(vth_p_eff - tech.vth_p)
            // Match the weaker PMOS to the NMOS so the bell is symmetric.
            .with_beta_scale(tech.k_n / tech.k_p);
        Ok(Self {
            nmos,
            pmos,
            vdd: tech.vdd,
            center,
            overlap,
        })
    }

    /// Programmed bell centre in volts.
    pub fn center(&self) -> f64 {
        self.center
    }

    /// Programmed conduction-window width in volts.
    pub fn overlap(&self) -> f64 {
        self.overlap
    }

    /// Supply voltage.
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Switching current at input voltage `v` (clamped to the rails), in
    /// amperes. Never returns zero thanks to the technology leakage floor.
    pub fn current(&self, v: f64) -> f64 {
        let v = v.clamp(0.0, self.vdd);
        let i_n = self.nmos.saturation_current(v);
        let i_p = self.pmos.saturation_current(self.vdd - v);
        1.0 / (1.0 / i_n + 1.0 / i_p)
    }

    /// Peak switching current (at the bell centre), in amperes.
    pub fn peak_current(&self) -> f64 {
        self.current(self.center)
    }

    /// Effective Gaussian σ (volts) of the bell, measured from its
    /// half-maximum width: `σ = FWHM / 2.3548`.
    pub fn effective_sigma(&self) -> f64 {
        let peak = self.peak_current();
        let half = peak * 0.5;
        // Scan outward from the centre for the half-power points.
        let step = 1e-4;
        let mut right = self.center;
        while right < self.vdd && self.current(right) > half {
            right += step;
        }
        let mut left = self.center;
        while left > 0.0 && self.current(left) > half {
            left -= step;
        }
        (right - left) / 2.354_820_045
    }

    /// Applies per-device mismatch: threshold shifts (volts) and relative
    /// transconductance errors for the NMOS/PMOS halves.
    pub fn with_mismatch(mut self, dvth_n: f64, dvth_p: f64, dbeta_n: f64, dbeta_p: f64) -> Self {
        self.nmos = self
            .nmos
            .with_vth_shift(dvth_n)
            .with_beta_scale((1.0 + dbeta_n).max(0.01));
        self.pmos = self
            .pmos
            .with_vth_shift(dvth_p)
            .with_beta_scale((1.0 + dbeta_p).max(0.01));
        // The centre moves with the average threshold imbalance.
        self.center = (self.center + (dvth_n - dvth_p) * 0.5).clamp(0.0, self.vdd);
        self
    }
}

/// A multi-input inverter: one [`GaussianLikeCell`] per input dimension,
/// composed in series so the total current is the paper's harmonic
/// combination of the per-input bells.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiInputInverter {
    cells: Vec<GaussianLikeCell>,
}

impl MultiInputInverter {
    /// Creates a multi-input inverter from per-dimension cells.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] for an empty cell list.
    pub fn new(cells: Vec<GaussianLikeCell>) -> Result<Self> {
        if cells.is_empty() {
            return Err(DeviceError::InvalidParameter(
                "multi-input inverter requires at least one cell".into(),
            ));
        }
        Ok(Self { cells })
    }

    /// Convenience constructor: one cell per centre voltage, shared width.
    ///
    /// # Errors
    ///
    /// Propagates cell-construction errors.
    pub fn from_centers(tech: &TechParams, centers: &[f64], overlap: f64) -> Result<Self> {
        let cells = centers
            .iter()
            .map(|&c| GaussianLikeCell::with_center_width(tech, c, overlap))
            .collect::<Result<Vec<_>>>()?;
        Self::new(cells)
    }

    /// Number of inputs.
    pub fn num_inputs(&self) -> usize {
        self.cells.len()
    }

    /// Per-dimension cells.
    pub fn cells(&self) -> &[GaussianLikeCell] {
        &self.cells
    }

    /// Series switching current for the given input voltages:
    /// `1 / Σᵢ 1/I_cell_i(vᵢ)`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of cells.
    pub fn current(&self, inputs: &[f64]) -> f64 {
        assert_eq!(
            inputs.len(),
            self.cells.len(),
            "input count must match cell count"
        );
        let inv_sum: f64 = self
            .cells
            .iter()
            .zip(inputs)
            .map(|(cell, &v)| 1.0 / cell.current(v))
            .sum();
        1.0 / inv_sum
    }

    /// Peak current when every input sits at its cell centre.
    pub fn peak_current(&self) -> f64 {
        let centers: Vec<f64> = self.cells.iter().map(|c| c.center()).collect();
        self.current(&centers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> TechParams {
        TechParams::cmos_45nm()
    }

    #[test]
    fn bell_peaks_at_programmed_center() {
        let t = tech();
        for &c in &[0.3, 0.5, 0.7] {
            let cell = GaussianLikeCell::with_center(&t, c);
            let peak = cell.current(c);
            for &v in &[c - 0.2, c - 0.1, c + 0.1, c + 0.2] {
                assert!(cell.current(v) < peak, "center {c}: I({v}) >= I({c})");
            }
        }
    }

    #[test]
    fn bell_is_symmetric_near_center() {
        let cell = GaussianLikeCell::with_center(&tech(), 0.5);
        for &dv in &[0.05, 0.1, 0.15] {
            let a = cell.current(0.5 + dv);
            let b = cell.current(0.5 - dv);
            assert!((a / b - 1.0).abs() < 0.05, "asymmetric at dv={dv}");
        }
    }

    #[test]
    fn current_decays_monotonically_from_center() {
        let cell = GaussianLikeCell::with_center(&tech(), 0.5);
        let mut prev = cell.current(0.5);
        let mut v = 0.5;
        while v < 0.95 {
            v += 0.02;
            let i = cell.current(v);
            assert!(i < prev, "non-monotone decay at {v}");
            prev = i;
        }
    }

    #[test]
    fn tails_are_orders_of_magnitude_below_peak() {
        let cell = GaussianLikeCell::with_center(&tech(), 0.5);
        let peak = cell.peak_current();
        assert!(cell.current(0.0) < peak * 1e-3);
        assert!(cell.current(1.0) < peak * 1e-3);
    }

    #[test]
    fn gaussian_fit_quality() {
        // Least-squares fit of log I to a parabola should explain nearly
        // all variance near the bell core ("Gaussian-like").
        let cell = GaussianLikeCell::with_center(&tech(), 0.5);
        let sigma = cell.effective_sigma();
        let points: Vec<(f64, f64)> = (0..61)
            .map(|k| {
                let v = 0.5 + (k as f64 - 30.0) / 30.0 * 1.5 * sigma;
                (v, cell.current(v).ln())
            })
            .collect();
        // Fit y = a + b v + c v² by normal equations.
        let n = points.len() as f64;
        let (mut sx, mut sx2, mut sx3, mut sx4) = (0.0, 0.0, 0.0, 0.0);
        let (mut sy, mut sxy, mut sx2y) = (0.0, 0.0, 0.0);
        for &(x, y) in &points {
            sx += x;
            sx2 += x * x;
            sx3 += x * x * x;
            sx4 += x * x * x * x;
            sy += y;
            sxy += x * y;
            sx2y += x * x * y;
        }
        use navicim_math::linalg::Matrix;
        let a = Matrix::from_rows(&[&[n, sx, sx2], &[sx, sx2, sx3], &[sx2, sx3, sx4]]).unwrap();
        let coef = a.solve(&[sy, sxy, sx2y]).unwrap();
        let mean_y = sy / n;
        let mut ss_res = 0.0;
        let mut ss_tot = 0.0;
        for &(x, y) in &points {
            let pred = coef[0] + coef[1] * x + coef[2] * x * x;
            ss_res += (y - pred) * (y - pred);
            ss_tot += (y - mean_y) * (y - mean_y);
        }
        let r2 = 1.0 - ss_res / ss_tot;
        assert!(r2 > 0.95, "log-quadratic fit R² = {r2}");
        assert!(coef[2] < 0.0, "parabola must open downward");
    }

    #[test]
    fn overlap_controls_width() {
        let t = tech();
        let narrow = GaussianLikeCell::with_center_width(&t, 0.5, 0.2).unwrap();
        let wide = GaussianLikeCell::with_center_width(&t, 0.5, 0.5).unwrap();
        assert!(wide.effective_sigma() > narrow.effective_sigma());
    }

    #[test]
    fn invalid_overlap_rejected() {
        let t = tech();
        assert!(GaussianLikeCell::with_center_width(&t, 0.5, 0.0).is_err());
        assert!(GaussianLikeCell::with_center_width(&t, 0.5, 2.0).is_err());
    }

    #[test]
    fn mismatch_shifts_center() {
        let cell = GaussianLikeCell::with_center(&tech(), 0.5);
        let shifted = cell.with_mismatch(0.05, -0.05, 0.0, 0.0);
        assert!(shifted.center() > cell.center());
    }

    #[test]
    fn multi_input_harmonic_composition() {
        let t = tech();
        let inv = MultiInputInverter::from_centers(&t, &[0.4, 0.5, 0.6], 0.3).unwrap();
        let v = [0.45, 0.5, 0.55];
        let i = inv.current(&v);
        let expect = 1.0
            / inv
                .cells()
                .iter()
                .zip(&v)
                .map(|(c, &x)| 1.0 / c.current(x))
                .sum::<f64>();
        assert!((i / expect - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multi_input_dominated_by_weakest_cell() {
        // When one input sits far in a tail, the total current collapses to
        // (slightly below) that cell's tail current — min-like behaviour
        // that produces the paper's rectilinear contours.
        let t = tech();
        let inv = MultiInputInverter::from_centers(&t, &[0.5, 0.5], 0.3).unwrap();
        let i = inv.current(&[0.5, 0.1]);
        let weak = inv.cells()[1].current(0.1);
        assert!(i <= weak);
        assert!(i > weak * 0.5);
    }

    #[test]
    fn multi_input_peak_at_centers() {
        let t = tech();
        let inv = MultiInputInverter::from_centers(&t, &[0.3, 0.6], 0.3).unwrap();
        let peak = inv.peak_current();
        assert!(peak > inv.current(&[0.3, 0.5]));
        assert!(peak > inv.current(&[0.4, 0.6]));
    }

    #[test]
    fn empty_cell_list_rejected() {
        assert!(MultiInputInverter::new(vec![]).is_err());
    }

    #[test]
    fn rails_clamping() {
        let cell = GaussianLikeCell::with_center(&tech(), 0.5);
        assert_eq!(cell.current(-5.0), cell.current(0.0));
        assert_eq!(cell.current(5.0), cell.current(1.0));
    }
}
