//! Non-volatile floating-gate threshold programming.
//!
//! The paper programs each inverter's switching threshold by adjusting the
//! charge density on a floating gate (charge-trap transistor mechanism,
//! ref. [17] of the paper). This module models the practical limitations of
//! that write path: a bounded programming window, finite write resolution
//! (program/verify quantization), write noise, and slow retention drift
//! back toward the neutral state.

use crate::{DeviceError, Result};
use navicim_math::rng::{Rng64, SampleExt};

/// Configuration of a floating-gate programming path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloatingGateConfig {
    /// Maximum threshold shift magnitude achievable, in volts.
    pub max_shift: f64,
    /// Number of program/verify levels across the `[-max_shift, max_shift]`
    /// window (write quantization).
    pub levels: u32,
    /// Standard deviation of residual write noise in volts.
    pub write_noise: f64,
    /// Fractional charge loss per year of retention (drift toward zero
    /// shift).
    pub drift_per_year: f64,
}

impl Default for FloatingGateConfig {
    fn default() -> Self {
        Self {
            max_shift: 0.4,
            levels: 256,
            write_noise: 1e-3,
            drift_per_year: 0.01,
        }
    }
}

/// One programmable floating gate holding a threshold-voltage shift.
///
/// ```
/// use navicim_device::floating_gate::{FloatingGate, FloatingGateConfig};
/// use navicim_math::rng::Pcg32;
///
/// let mut fg = FloatingGate::new(FloatingGateConfig::default());
/// let mut rng = Pcg32::seed_from_u64(1);
/// fg.program(0.2, &mut rng).unwrap();
/// assert!((fg.shift() - 0.2).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloatingGate {
    config: FloatingGateConfig,
    shift: f64,
}

impl FloatingGate {
    /// Creates an erased (zero-shift) floating gate.
    pub fn new(config: FloatingGateConfig) -> Self {
        Self { config, shift: 0.0 }
    }

    /// Currently stored threshold shift in volts.
    pub fn shift(&self) -> f64 {
        self.shift
    }

    /// Programming configuration.
    pub fn config(&self) -> &FloatingGateConfig {
        &self.config
    }

    /// Programs a target threshold shift through the quantized, noisy write
    /// path. The achieved shift is returned.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::VoltageOutOfRange`] when the target lies
    /// outside the programming window.
    pub fn program<R: Rng64 + ?Sized>(&mut self, target: f64, rng: &mut R) -> Result<f64> {
        let w = self.config.max_shift;
        if !(-w..=w).contains(&target) {
            return Err(DeviceError::VoltageOutOfRange {
                value: target,
                low: -w,
                high: w,
            });
        }
        let step = 2.0 * w / (self.config.levels.max(2) - 1) as f64;
        let quantized = (target / step).round() * step;
        self.shift = (quantized + rng.sample_normal(0.0, self.config.write_noise)).clamp(-w, w);
        Ok(self.shift)
    }

    /// Erases the gate back to zero shift.
    pub fn erase(&mut self) {
        self.shift = 0.0;
    }

    /// Applies retention drift for the given number of years: the stored
    /// charge decays exponentially toward zero.
    ///
    /// # Panics
    ///
    /// Panics in debug builds for negative durations.
    pub fn age(&mut self, years: f64) {
        debug_assert!(years >= 0.0, "age requires a non-negative duration");
        let keep = (1.0 - self.config.drift_per_year).max(0.0).powf(years);
        self.shift *= keep;
    }

    /// Worst-case programming error: half a quantization step plus 3σ of
    /// write noise.
    pub fn worst_case_error(&self) -> f64 {
        let step = 2.0 * self.config.max_shift / (self.config.levels.max(2) - 1) as f64;
        0.5 * step + 3.0 * self.config.write_noise
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_math::rng::Pcg32;

    #[test]
    fn program_hits_target_within_tolerance() {
        let mut fg = FloatingGate::new(FloatingGateConfig::default());
        let mut rng = Pcg32::seed_from_u64(1);
        for &target in &[-0.35, -0.1, 0.0, 0.05, 0.39] {
            fg.program(target, &mut rng).unwrap();
            assert!(
                (fg.shift() - target).abs() <= fg.worst_case_error(),
                "target {target} got {}",
                fg.shift()
            );
        }
    }

    #[test]
    fn out_of_window_rejected() {
        let mut fg = FloatingGate::new(FloatingGateConfig::default());
        let mut rng = Pcg32::seed_from_u64(2);
        assert!(matches!(
            fg.program(0.9, &mut rng),
            Err(DeviceError::VoltageOutOfRange { .. })
        ));
        // Failed write leaves state untouched.
        assert_eq!(fg.shift(), 0.0);
    }

    #[test]
    fn quantization_limits_resolution() {
        let config = FloatingGateConfig {
            levels: 8,
            write_noise: 0.0,
            ..FloatingGateConfig::default()
        };
        let mut fg = FloatingGate::new(config);
        let mut rng = Pcg32::seed_from_u64(3);
        fg.program(0.111, &mut rng).unwrap();
        // With 8 levels over [-0.4, 0.4], step is ~0.114.
        let step = 0.8 / 7.0;
        let on_grid = (fg.shift() / step).round() * step;
        assert!((fg.shift() - on_grid).abs() < 1e-12);
    }

    #[test]
    fn erase_and_age() {
        let mut fg = FloatingGate::new(FloatingGateConfig::default());
        let mut rng = Pcg32::seed_from_u64(4);
        fg.program(0.3, &mut rng).unwrap();
        let before = fg.shift();
        fg.age(10.0);
        assert!(fg.shift().abs() < before.abs());
        assert!(fg.shift() * before >= 0.0, "drift keeps sign");
        fg.erase();
        assert_eq!(fg.shift(), 0.0);
    }

    #[test]
    fn aging_zero_years_is_identity() {
        let mut fg = FloatingGate::new(FloatingGateConfig::default());
        let mut rng = Pcg32::seed_from_u64(5);
        fg.program(0.2, &mut rng).unwrap();
        let s = fg.shift();
        fg.age(0.0);
        assert_eq!(fg.shift(), s);
    }
}
