//! Analog device models for the navicim compute-in-memory substrate.
//!
//! The paper's Section II builds its likelihood engine out of six-transistor
//! CMOS inverters whose *switching current* traces a Gaussian-like bell as a
//! function of the input voltage (Fig. 2(b)), with the peak position made
//! programmable through floating-gate threshold-voltage shifts. This crate
//! models that stack from first principles:
//!
//! - [`mosfet`] — a continuous EKV-style MOSFET current model valid from
//!   subthreshold through saturation,
//! - [`floating_gate`] — non-volatile threshold programming (charge-trap
//!   style) with write quantization and retention drift,
//! - [`inverter`] — the Gaussian-like cell (NMOS/PMOS series conduction) and
//!   the multi-input inverter whose current composes as the harmonic mean of
//!   its per-input cells, exactly the paper's
//!   `1/(1/I_1 + 1/I_2 + 1/I_3)` expression,
//! - [`variation`] — process-variation sampling (threshold and
//!   transconductance mismatch),
//! - [`noise`] — thermal/shot current-noise models used by both the analog
//!   likelihood engine and the SRAM-embedded RNG.
//!
//! # Example
//!
//! ```
//! use navicim_device::inverter::GaussianLikeCell;
//! use navicim_device::params::TechParams;
//!
//! let tech = TechParams::cmos_45nm();
//! let cell = GaussianLikeCell::with_center(&tech, 0.5);
//! // The switching current peaks at the programmed center voltage.
//! let peak = cell.current(0.5);
//! assert!(peak > cell.current(0.2));
//! assert!(peak > cell.current(0.8));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod floating_gate;
pub mod inverter;
pub mod mosfet;
pub mod noise;
pub mod params;
pub mod variation;

use std::error::Error;
use std::fmt;

/// Error type for device-model construction and programming.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// A voltage was outside the supply rails or another valid interval.
    VoltageOutOfRange {
        /// The offending value.
        value: f64,
        /// Lower bound of the valid interval.
        low: f64,
        /// Upper bound of the valid interval.
        high: f64,
    },
    /// A model parameter was non-physical (negative width, zero slope, …).
    InvalidParameter(String),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::VoltageOutOfRange { value, low, high } => {
                write!(f, "voltage {value} outside valid range [{low}, {high}]")
            }
            DeviceError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl Error for DeviceError {}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, DeviceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = DeviceError::VoltageOutOfRange {
            value: 1.5,
            low: 0.0,
            high: 1.0,
        };
        assert!(e.to_string().contains("1.5"));
        let e = DeviceError::InvalidParameter("width".into());
        assert!(e.to_string().contains("width"));
    }
}
