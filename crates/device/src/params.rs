//! Technology parameters for the modeled CMOS processes.
//!
//! Two operating points from the paper are provided: the 45 nm node used by
//! the inverter-array likelihood engine of Section II and the 16 nm node
//! used by the SRAM MC-Dropout macro of Section III. Values are
//! representative textbook/PTM-class numbers — the co-design results depend
//! on their *ratios* and functional shapes, not the absolute decimals.

/// Boltzmann constant over electron charge at 300 K: the thermal voltage
/// `U_T = kT/q` in volts.
pub const THERMAL_VOLTAGE_300K: f64 = 0.02585;

/// Electron charge in coulombs, used by the shot-noise model.
pub const ELECTRON_CHARGE: f64 = 1.602_176_634e-19;

/// Boltzmann constant in J/K, used by the thermal-noise model.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Process/technology parameter bundle shared by all devices on a die.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechParams {
    /// Human-readable node name (e.g. "45nm").
    pub node: &'static str,
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Nominal NMOS threshold voltage in volts.
    pub vth_n: f64,
    /// Nominal PMOS threshold voltage magnitude in volts.
    pub vth_p: f64,
    /// NMOS transconductance factor `k_n = μ_n C_ox W/L` in A/V².
    pub k_n: f64,
    /// PMOS transconductance factor in A/V².
    pub k_p: f64,
    /// Subthreshold slope factor `n` (dimensionless, ≥ 1).
    pub slope_n: f64,
    /// Thermal voltage `U_T` in volts (temperature dependent).
    pub u_t: f64,
    /// Off-state leakage floor per device in amperes, keeping harmonic-mean
    /// compositions finite.
    pub i_leak: f64,
    /// Standard deviation of threshold-voltage mismatch in volts
    /// (Pelgrom-style, for minimum-size devices).
    pub sigma_vth: f64,
    /// Relative standard deviation of the transconductance factor.
    pub sigma_beta: f64,
}

impl TechParams {
    /// 45 nm CMOS operating point used by the Section II inverter array.
    pub fn cmos_45nm() -> Self {
        Self {
            node: "45nm",
            vdd: 1.0,
            vth_n: 0.35,
            vth_p: 0.35,
            k_n: 300e-6,
            k_p: 150e-6,
            slope_n: 1.4,
            u_t: THERMAL_VOLTAGE_300K,
            i_leak: 1e-12,
            sigma_vth: 0.020,
            sigma_beta: 0.03,
        }
    }

    /// 16 nm CMOS operating point (0.85 V) used by the Section III SRAM
    /// macro.
    pub fn cmos_16nm() -> Self {
        Self {
            node: "16nm",
            vdd: 0.85,
            vth_n: 0.30,
            vth_p: 0.30,
            k_n: 500e-6,
            k_p: 280e-6,
            slope_n: 1.3,
            u_t: THERMAL_VOLTAGE_300K,
            i_leak: 5e-12,
            sigma_vth: 0.028,
            sigma_beta: 0.04,
        }
    }

    /// Returns a copy adjusted to the given temperature in kelvin.
    ///
    /// Models the first-order effects: thermal voltage scales linearly and
    /// thresholds drop ~2 mV/K.
    ///
    /// # Panics
    ///
    /// Panics in debug builds for non-positive temperatures.
    pub fn at_temperature(mut self, kelvin: f64) -> Self {
        debug_assert!(kelvin > 0.0, "temperature must be positive kelvin");
        self.u_t = THERMAL_VOLTAGE_300K * kelvin / 300.0;
        let dvth = -0.002 * (kelvin - 300.0);
        self.vth_n = (self.vth_n + dvth).max(0.05);
        self.vth_p = (self.vth_p + dvth).max(0.05);
        self
    }
}

impl Default for TechParams {
    fn default() -> Self {
        Self::cmos_45nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_are_distinct() {
        let a = TechParams::cmos_45nm();
        let b = TechParams::cmos_16nm();
        assert_ne!(a.node, b.node);
        assert!(b.vdd < a.vdd);
    }

    #[test]
    fn temperature_scaling() {
        let hot = TechParams::cmos_45nm().at_temperature(400.0);
        let cold = TechParams::cmos_45nm().at_temperature(250.0);
        assert!(hot.u_t > cold.u_t);
        assert!(hot.vth_n < cold.vth_n);
    }

    #[test]
    fn default_is_45nm() {
        assert_eq!(TechParams::default().node, "45nm");
    }
}
