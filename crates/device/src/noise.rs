//! Electronic noise-current models and the splittable evaluation noise
//! stream.
//!
//! Two consumers in the workspace need physically grounded noise:
//!
//! - the analog likelihood engine (Section II), where noise perturbs the
//!   summed column current before ADC conversion, and
//! - the SRAM-embedded RNG (Section III), which *harvests* per-port noise
//!   currents as its entropy source.
//!
//! The model covers thermal (Johnson–Nyquist channel) noise `4kT·γ·g_m·Δf`
//! and shot noise `2q·I·Δf`, both white over the evaluation bandwidth.
//!
//! [`NoiseStream`] supplies the per-evaluation standard normals the
//! likelihood engine scales through [`NoiseModel::sample_with_z`]. It is
//! *counter-based*: sample `i` is a pure function of `(seed, i)`, so any
//! chunk of a batch can be evaluated on any thread, in any order, and
//! still perturb evaluation `i` with exactly the value a sequential pass
//! would have used.

use crate::params::{BOLTZMANN, ELECTRON_CHARGE};
use navicim_math::rng::{Rng64, SampleExt};

/// White-noise model for a device biased at a given operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Absolute temperature in kelvin.
    pub temperature: f64,
    /// Excess-noise factor γ (≈ 2/3 long channel, ≈ 1–2 short channel).
    pub gamma: f64,
    /// Evaluation bandwidth in hertz (sets the integrated noise power).
    pub bandwidth: f64,
}

impl NoiseModel {
    /// Room-temperature model with short-channel excess noise and the given
    /// bandwidth.
    pub fn room_temperature(bandwidth: f64) -> Self {
        Self {
            temperature: 300.0,
            gamma: 1.5,
            bandwidth,
        }
    }

    /// RMS thermal noise current for a device with transconductance `gm`.
    pub fn thermal_rms(&self, gm: f64) -> f64 {
        (4.0 * BOLTZMANN * self.temperature * self.gamma * gm * self.bandwidth).sqrt()
    }

    /// RMS shot noise current for a bias current `i_bias`.
    pub fn shot_rms(&self, i_bias: f64) -> f64 {
        (2.0 * ELECTRON_CHARGE * i_bias.abs() * self.bandwidth).sqrt()
    }

    /// Combined RMS noise current (thermal ⊕ shot, uncorrelated).
    pub fn total_rms(&self, gm: f64, i_bias: f64) -> f64 {
        let t = self.thermal_rms(gm);
        let s = self.shot_rms(i_bias);
        (t * t + s * s).sqrt()
    }

    /// Draws one integrated noise-current sample for the operating point.
    pub fn sample<R: Rng64 + ?Sized>(&self, gm: f64, i_bias: f64, rng: &mut R) -> f64 {
        self.sample_with_z(gm, i_bias, rng.sample_standard_normal())
    }

    /// Noise-current sample from a pre-drawn standard-normal `z`.
    ///
    /// Batch evaluators take their standard normals from a [`NoiseStream`]
    /// and scale them per operating point through this method, so the
    /// noise formula lives here in the device model rather than being
    /// re-derived by each caller. `sample` delegates here, keeping the two
    /// paths identical.
    pub fn sample_with_z(&self, gm: f64, i_bias: f64, z: f64) -> f64 {
        self.total_rms(gm, i_bias) * z
    }
}

/// SplitMix64 increment (Steele, Lea, Flood 2014).
const SM64_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The `k`-th output word of a SplitMix64 generator seeded with `seed`,
/// computed directly from the counter (SplitMix64's state after `k + 1`
/// steps is `seed + (k + 1)·γ`, so any word is random-access).
fn splitmix_word(seed: u64, k: u64) -> u64 {
    let mut z = seed.wrapping_add(SM64_GAMMA.wrapping_mul(k.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` from the high 53 bits of a word (the same mapping
/// `Rng64::next_f64` uses).
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A counter-based, splittable stream of standard-normal samples.
///
/// [`NoiseStream::at`] is a pure function of `(seed, index)`: it consumes
/// words `2·index` and `2·index + 1` of a SplitMix64 sequence and pushes
/// them through the same Box–Muller transform as
/// [`SampleExt::sample_standard_normal`]. Two consequences:
///
/// - **Chunk/thread invariance.** A batch evaluator that assigns each
///   evaluation its absolute stream index produces bit-identical noise no
///   matter how the batch is chunked or which thread serves which chunk —
///   the property the `parallel` feature of `navicim-backend` relies on.
/// - **Sequential equivalence.** Drawing indices `0, 1, 2, …` reproduces
///   exactly the sequence a `SplitMix64`-backed
///   [`SampleExt::sample_standard_normal`] sampler would emit.
///
/// The stream also carries a `cursor` so stateful consumers (the CIM
/// engine) can hand out disjoint index ranges to successive batches:
/// batch `k` covers `[cursor, cursor + len)` and then advances the
/// cursor, which keeps scalar-call and batch-call histories aligned.
///
/// ```
/// use navicim_device::noise::NoiseStream;
/// let s = NoiseStream::new(42);
/// let mut t = NoiseStream::new(42);
/// // Random access agrees with sequential draws.
/// let seq: Vec<f64> = (0..4).map(|_| t.next_z()).collect();
/// let random: Vec<f64> = (0..4).map(|i| s.at(i)).collect();
/// assert_eq!(seq, random);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoiseStream {
    seed: u64,
    cursor: u64,
}

impl NoiseStream {
    /// Creates a stream from a 64-bit seed with the cursor at zero.
    pub fn new(seed: u64) -> Self {
        Self { seed, cursor: 0 }
    }

    /// Recreates a stream at an explicit cursor position, e.g. to replay
    /// or audit the index range a session claimed earlier.
    pub fn with_cursor(seed: u64, cursor: u64) -> Self {
        Self { seed, cursor }
    }

    /// The stream's seed. Streams with equal seeds index into one shared
    /// noise sequence; a serving layer that coalesces evaluations from
    /// many sessions uses this (with [`StreamAudit`]) to verify each
    /// session's claims stay on its own stream.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The standard-normal sample at absolute stream index `index`,
    /// independent of the cursor and of any other draw.
    pub fn at(&self, index: u64) -> f64 {
        let u = 1.0 - unit_f64(splitmix_word(self.seed, 2 * index));
        let v = unit_f64(splitmix_word(self.seed, 2 * index + 1));
        (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos()
    }

    /// Draws the sample at the cursor and advances it by one.
    pub fn next_z(&mut self) -> f64 {
        let z = self.at(self.cursor);
        self.cursor += 1;
        z
    }

    /// The index the next sequential draw will consume.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Advances the cursor past `n` samples (a batch evaluator claims its
    /// index range up front and commits it once the batch completes).
    pub fn advance(&mut self, n: u64) {
        self.cursor += n;
    }
}

/// Why a [`StreamAudit`] rejected a claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamAuditError {
    /// The claiming stream carries a different seed than the audited one,
    /// i.e. the claim indexes a different noise sequence entirely.
    SeedChanged {
        /// Seed the audit was started on.
        expected: u64,
        /// Seed the claiming stream carried.
        found: u64,
    },
    /// The claim does not start at the audit watermark: the session either
    /// skipped samples (gap) or re-claimed samples it already consumed
    /// (overlap).
    NonContiguous {
        /// Watermark the claim had to start at.
        expected: u64,
        /// Cursor the claiming stream was actually at.
        found: u64,
    },
}

impl std::fmt::Display for StreamAuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::SeedChanged { expected, found } => write!(
                f,
                "noise stream seed changed mid-session: audit began on {expected:#x}, \
                 claim carried {found:#x}"
            ),
            Self::NonContiguous { expected, found } => write!(
                f,
                "non-contiguous noise claim: watermark at index {expected}, \
                 claim started at {found}"
            ),
        }
    }
}

impl std::error::Error for StreamAuditError {}

/// Auditor for one session's claims on a noise stream.
///
/// A batch evaluator claims `[cursor, cursor + n)` and then advances the
/// cursor; when a serving layer coalesces many sessions' evaluations into
/// one compute pass, each session's slice of the merged batch must still
/// claim a contiguous, non-overlapping range of *its own* stream for the
/// results to stay bit-identical to a solo run. `StreamAudit` checks
/// exactly that invariant: seed fixed, ranges contiguous from a watermark.
///
/// ```
/// use navicim_device::noise::{NoiseStream, StreamAudit};
/// let mut stream = NoiseStream::new(9);
/// let mut audit = StreamAudit::begin(&stream);
/// assert_eq!(audit.claim(&stream, 4), Ok((0, 4)));
/// stream.advance(4);
/// assert_eq!(audit.claim(&stream, 2), Ok((4, 6)));
/// // Forgetting to advance re-claims the same range:
/// assert!(audit.claim(&stream, 1).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamAudit {
    seed: u64,
    next: u64,
}

impl StreamAudit {
    /// Starts auditing at `stream`'s current position.
    pub fn begin(stream: &NoiseStream) -> Self {
        Self {
            seed: stream.seed(),
            next: stream.cursor(),
        }
    }

    /// Records a claim of `n` samples made at `stream`'s current state and
    /// returns the claimed index range `[start, end)`.
    pub fn claim(&mut self, stream: &NoiseStream, n: u64) -> Result<(u64, u64), StreamAuditError> {
        if stream.seed() != self.seed {
            return Err(StreamAuditError::SeedChanged {
                expected: self.seed,
                found: stream.seed(),
            });
        }
        if stream.cursor() != self.next {
            return Err(StreamAuditError::NonContiguous {
                expected: self.next,
                found: stream.cursor(),
            });
        }
        let start = self.next;
        self.next += n;
        Ok((start, self.next))
    }

    /// The index the next valid claim must start at.
    pub fn watermark(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_math::rng::Pcg32;
    use navicim_math::stats;

    #[test]
    fn thermal_noise_scales_with_sqrt_gm() {
        let m = NoiseModel::room_temperature(1e9);
        let a = m.thermal_rms(1e-4);
        let b = m.thermal_rms(4e-4);
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn shot_noise_scales_with_sqrt_current() {
        let m = NoiseModel::room_temperature(1e9);
        let a = m.shot_rms(1e-6);
        let b = m.shot_rms(4e-6);
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn noise_magnitudes_are_physical() {
        // A 100 µA/V device at 1 GHz bandwidth: thermal noise should land in
        // the nA–µA range, far below the µA-scale signal currents.
        let m = NoiseModel::room_temperature(1e9);
        let rms = m.thermal_rms(1e-4);
        assert!(rms > 1e-9 && rms < 1e-5, "rms = {rms}");
    }

    #[test]
    fn samples_match_requested_rms() {
        let m = NoiseModel::room_temperature(1e8);
        let mut rng = Pcg32::seed_from_u64(1);
        let rms = m.total_rms(1e-4, 1e-6);
        let xs: Vec<f64> = (0..20_000)
            .map(|_| m.sample(1e-4, 1e-6, &mut rng))
            .collect();
        assert!((stats::std_dev(&xs) / rms - 1.0).abs() < 0.05);
        assert!(stats::mean(&xs).abs() < rms * 0.05);
    }

    #[test]
    fn total_combines_quadratically() {
        let m = NoiseModel::room_temperature(1e9);
        let t = m.thermal_rms(1e-4);
        let s = m.shot_rms(1e-5);
        let tot = m.total_rms(1e-4, 1e-5);
        assert!((tot * tot - (t * t + s * s)).abs() < 1e-24);
    }

    #[test]
    fn stream_matches_sequential_splitmix_sampler() {
        // NoiseStream::at is random access into the exact sequence a
        // sequential SplitMix64-backed Box-Muller sampler produces.
        use navicim_math::rng::SplitMix64;
        let stream = NoiseStream::new(0xfeed);
        let mut rng = SplitMix64::seed_from_u64(0xfeed);
        for i in 0..64 {
            assert_eq!(stream.at(i), rng.sample_standard_normal(), "index {i}");
        }
    }

    #[test]
    fn stream_order_independent() {
        let s = NoiseStream::new(7);
        let forward: Vec<f64> = (0..16).map(|i| s.at(i)).collect();
        let backward: Vec<f64> = (0..16).rev().map(|i| s.at(i)).collect();
        let reversed: Vec<f64> = backward.into_iter().rev().collect();
        assert_eq!(forward, reversed);
    }

    #[test]
    fn stream_cursor_tracks_draws() {
        let mut s = NoiseStream::new(3);
        assert_eq!(s.cursor(), 0);
        let a = s.next_z();
        assert_eq!(s.cursor(), 1);
        s.advance(9);
        assert_eq!(s.cursor(), 10);
        assert_eq!(a, NoiseStream::new(3).at(0));
    }

    #[test]
    fn stream_samples_are_standard_normal() {
        let s = NoiseStream::new(11);
        let xs: Vec<f64> = (0..20_000).map(|i| s.at(i)).collect();
        assert!(stats::mean(&xs).abs() < 0.02);
        assert!((stats::std_dev(&xs) - 1.0).abs() < 0.02);
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let a = NoiseStream::new(1);
        let b = NoiseStream::new(2);
        let same = (0..64).filter(|&i| a.at(i) == b.at(i)).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn with_cursor_replays_a_claimed_range() {
        let mut live = NoiseStream::new(0xabcd);
        let drawn: Vec<f64> = (0..8).map(|_| live.next_z()).collect();
        let replay = NoiseStream::with_cursor(0xabcd, 0);
        let replayed: Vec<f64> = (0..8).map(|i| replay.at(i)).collect();
        assert_eq!(drawn, replayed);
        assert_eq!(live.seed(), replay.seed());
        assert_eq!(NoiseStream::with_cursor(0xabcd, 8), live);
    }

    #[test]
    fn audit_accepts_contiguous_claims_and_flags_gaps() {
        let mut stream = NoiseStream::new(5);
        let mut audit = StreamAudit::begin(&stream);
        assert_eq!(audit.claim(&stream, 3), Ok((0, 3)));
        stream.advance(3);
        assert_eq!(audit.claim(&stream, 5), Ok((3, 8)));
        assert_eq!(audit.watermark(), 8);
        // A gap (stream advanced past the watermark) is rejected.
        stream.advance(9);
        assert_eq!(
            audit.claim(&stream, 1),
            Err(StreamAuditError::NonContiguous {
                expected: 8,
                found: 12
            })
        );
    }

    #[test]
    fn audit_rejects_cross_stream_claims() {
        let a = NoiseStream::new(1);
        let b = NoiseStream::new(2);
        let mut audit = StreamAudit::begin(&a);
        assert_eq!(
            audit.claim(&b, 4),
            Err(StreamAuditError::SeedChanged {
                expected: 1,
                found: 2
            })
        );
    }

    #[test]
    fn higher_temperature_more_thermal_noise() {
        let cold = NoiseModel {
            temperature: 250.0,
            gamma: 1.5,
            bandwidth: 1e9,
        };
        let hot = NoiseModel {
            temperature: 400.0,
            gamma: 1.5,
            bandwidth: 1e9,
        };
        assert!(hot.thermal_rms(1e-4) > cold.thermal_rms(1e-4));
    }
}
