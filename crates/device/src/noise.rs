//! Electronic noise-current models.
//!
//! Two consumers in the workspace need physically grounded noise:
//!
//! - the analog likelihood engine (Section II), where noise perturbs the
//!   summed column current before ADC conversion, and
//! - the SRAM-embedded RNG (Section III), which *harvests* per-port noise
//!   currents as its entropy source.
//!
//! The model covers thermal (Johnson–Nyquist channel) noise `4kT·γ·g_m·Δf`
//! and shot noise `2q·I·Δf`, both white over the evaluation bandwidth.

use crate::params::{BOLTZMANN, ELECTRON_CHARGE};
use navicim_math::rng::{Rng64, SampleExt};

/// White-noise model for a device biased at a given operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Absolute temperature in kelvin.
    pub temperature: f64,
    /// Excess-noise factor γ (≈ 2/3 long channel, ≈ 1–2 short channel).
    pub gamma: f64,
    /// Evaluation bandwidth in hertz (sets the integrated noise power).
    pub bandwidth: f64,
}

impl NoiseModel {
    /// Room-temperature model with short-channel excess noise and the given
    /// bandwidth.
    pub fn room_temperature(bandwidth: f64) -> Self {
        Self {
            temperature: 300.0,
            gamma: 1.5,
            bandwidth,
        }
    }

    /// RMS thermal noise current for a device with transconductance `gm`.
    pub fn thermal_rms(&self, gm: f64) -> f64 {
        (4.0 * BOLTZMANN * self.temperature * self.gamma * gm * self.bandwidth).sqrt()
    }

    /// RMS shot noise current for a bias current `i_bias`.
    pub fn shot_rms(&self, i_bias: f64) -> f64 {
        (2.0 * ELECTRON_CHARGE * i_bias.abs() * self.bandwidth).sqrt()
    }

    /// Combined RMS noise current (thermal ⊕ shot, uncorrelated).
    pub fn total_rms(&self, gm: f64, i_bias: f64) -> f64 {
        let t = self.thermal_rms(gm);
        let s = self.shot_rms(i_bias);
        (t * t + s * s).sqrt()
    }

    /// Draws one integrated noise-current sample for the operating point.
    pub fn sample<R: Rng64 + ?Sized>(&self, gm: f64, i_bias: f64, rng: &mut R) -> f64 {
        self.sample_with_z(gm, i_bias, rng.sample_standard_normal())
    }

    /// Noise-current sample from a pre-drawn standard-normal `z`.
    ///
    /// Batch evaluators harvest their standard normals in bulk and scale
    /// them per operating point through this method, so the noise formula
    /// lives here in the device model rather than being re-derived by
    /// each caller. `sample` delegates here, keeping the two paths
    /// identical.
    pub fn sample_with_z(&self, gm: f64, i_bias: f64, z: f64) -> f64 {
        self.total_rms(gm, i_bias) * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_math::rng::Pcg32;
    use navicim_math::stats;

    #[test]
    fn thermal_noise_scales_with_sqrt_gm() {
        let m = NoiseModel::room_temperature(1e9);
        let a = m.thermal_rms(1e-4);
        let b = m.thermal_rms(4e-4);
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn shot_noise_scales_with_sqrt_current() {
        let m = NoiseModel::room_temperature(1e9);
        let a = m.shot_rms(1e-6);
        let b = m.shot_rms(4e-6);
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn noise_magnitudes_are_physical() {
        // A 100 µA/V device at 1 GHz bandwidth: thermal noise should land in
        // the nA–µA range, far below the µA-scale signal currents.
        let m = NoiseModel::room_temperature(1e9);
        let rms = m.thermal_rms(1e-4);
        assert!(rms > 1e-9 && rms < 1e-5, "rms = {rms}");
    }

    #[test]
    fn samples_match_requested_rms() {
        let m = NoiseModel::room_temperature(1e8);
        let mut rng = Pcg32::seed_from_u64(1);
        let rms = m.total_rms(1e-4, 1e-6);
        let xs: Vec<f64> = (0..20_000)
            .map(|_| m.sample(1e-4, 1e-6, &mut rng))
            .collect();
        assert!((stats::std_dev(&xs) / rms - 1.0).abs() < 0.05);
        assert!(stats::mean(&xs).abs() < rms * 0.05);
    }

    #[test]
    fn total_combines_quadratically() {
        let m = NoiseModel::room_temperature(1e9);
        let t = m.thermal_rms(1e-4);
        let s = m.shot_rms(1e-5);
        let tot = m.total_rms(1e-4, 1e-5);
        assert!((tot * tot - (t * t + s * s)).abs() < 1e-24);
    }

    #[test]
    fn higher_temperature_more_thermal_noise() {
        let cold = NoiseModel {
            temperature: 250.0,
            gamma: 1.5,
            bandwidth: 1e9,
        };
        let hot = NoiseModel {
            temperature: 400.0,
            gamma: 1.5,
            bandwidth: 1e9,
        };
        assert!(hot.thermal_rms(1e-4) > cold.thermal_rms(1e-4));
    }
}
