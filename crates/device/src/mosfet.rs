//! Continuous MOSFET drain-current model (EKV-style).
//!
//! The Gaussian-like inverter bell of the paper arises from the *product of
//! conduction regimes*: the NMOS current rises exponentially below threshold
//! and quadratically above, while the PMOS current falls symmetrically. A
//! model that is continuous across the subthreshold/saturation boundary is
//! therefore essential; we use the EKV forward-current interpolation
//!
//! `I = 2 n β U_T² · ln²(1 + exp((V_GS − V_TH) / (2 n U_T)))`
//!
//! which tends to `β/2·(V_GS−V_TH)²` above threshold and to an exponential
//! below it.

use crate::params::TechParams;

/// Transistor polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// N-channel device: conducts when the gate is high.
    Nmos,
    /// P-channel device: conducts when the gate is low.
    Pmos,
}

/// A single MOSFET with its effective parameters (after floating-gate
/// programming and process variation have been applied).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mosfet {
    polarity: Polarity,
    /// Effective threshold voltage magnitude in volts.
    vth: f64,
    /// Effective transconductance factor β = k·(W/L) in A/V².
    beta: f64,
    /// Subthreshold slope factor.
    slope_n: f64,
    /// Thermal voltage.
    u_t: f64,
    /// Leakage floor in amperes.
    i_leak: f64,
}

impl Mosfet {
    /// Creates a nominal NMOS device for the given technology.
    pub fn nmos(tech: &TechParams) -> Self {
        Self {
            polarity: Polarity::Nmos,
            vth: tech.vth_n,
            beta: tech.k_n,
            slope_n: tech.slope_n,
            u_t: tech.u_t,
            i_leak: tech.i_leak,
        }
    }

    /// Creates a nominal PMOS device for the given technology.
    pub fn pmos(tech: &TechParams) -> Self {
        Self {
            polarity: Polarity::Pmos,
            vth: tech.vth_p,
            beta: tech.k_p,
            slope_n: tech.slope_n,
            u_t: tech.u_t,
            i_leak: tech.i_leak,
        }
    }

    /// Device polarity.
    pub fn polarity(&self) -> Polarity {
        self.polarity
    }

    /// Effective threshold voltage magnitude in volts.
    pub fn vth(&self) -> f64 {
        self.vth
    }

    /// Effective transconductance factor in A/V².
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Returns a copy with the threshold shifted by `delta` volts
    /// (floating-gate programming or mismatch).
    pub fn with_vth_shift(mut self, delta: f64) -> Self {
        self.vth += delta;
        self
    }

    /// Returns a copy with the transconductance scaled by `factor`
    /// (sizing or mismatch).
    ///
    /// # Panics
    ///
    /// Panics in debug builds for non-positive factors.
    pub fn with_beta_scale(mut self, factor: f64) -> Self {
        debug_assert!(factor > 0.0, "beta scale must be positive");
        self.beta *= factor;
        self
    }

    /// Saturation drain current for an effective gate overdrive.
    ///
    /// For NMOS the overdrive is `V_GS`; for PMOS pass `V_SG` (source-gate),
    /// i.e. the amount by which the gate is pulled *below* the source. The
    /// EKV interpolation keeps the expression smooth through threshold, and
    /// the technology leakage floor is always added so currents never reach
    /// exactly zero (which would break harmonic-mean composition).
    pub fn saturation_current(&self, v_gate_drive: f64) -> f64 {
        let x = (v_gate_drive - self.vth) / (2.0 * self.slope_n * self.u_t);
        // ln(1+e^x) computed stably for large |x|.
        let softplus = if x > 30.0 { x } else { x.exp().ln_1p() };
        let i_f = 2.0 * self.slope_n * self.beta * self.u_t * self.u_t * softplus * softplus;
        i_f + self.i_leak
    }

    /// Transconductance `dI/dV` at the given gate drive, via central
    /// difference (used by the noise model).
    pub fn transconductance(&self, v_gate_drive: f64) -> f64 {
        let h = 1e-6;
        (self.saturation_current(v_gate_drive + h) - self.saturation_current(v_gate_drive - h))
            / (2.0 * h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos() -> Mosfet {
        Mosfet::nmos(&TechParams::cmos_45nm())
    }

    #[test]
    fn current_is_monotone_in_gate_drive() {
        let d = nmos();
        let mut prev = 0.0;
        for i in 0..100 {
            let v = i as f64 / 100.0;
            let i_d = d.saturation_current(v);
            assert!(i_d > prev, "current must increase with gate drive");
            prev = i_d;
        }
    }

    #[test]
    fn subthreshold_is_exponential() {
        // Ratio of currents for a fixed ΔV in deep subthreshold should be
        // exp(ΔV / (n U_T)).
        let tech = TechParams::cmos_45nm();
        let d = nmos();
        let v1 = 0.10;
        let dv = 0.03;
        let ratio = d.saturation_current(v1 + dv) / d.saturation_current(v1);
        let expect = (dv / (tech.slope_n * tech.u_t)).exp();
        assert!(
            (ratio / expect - 1.0).abs() < 0.05,
            "ratio {ratio} vs {expect}"
        );
    }

    #[test]
    fn strong_inversion_is_quadratic() {
        // Far above threshold the current approaches β/2·(V−Vth)² within the
        // EKV asymptote (which carries the slope factor n).
        let tech = TechParams::cmos_45nm();
        let d = nmos();
        let v = tech.vth_n + 0.5;
        let i_d = d.saturation_current(v);
        let quad = 0.5 * tech.k_n / tech.slope_n * (v - tech.vth_n).powi(2);
        assert!((i_d / quad - 1.0).abs() < 0.25, "i {i_d} vs quad {quad}");
    }

    #[test]
    fn vth_shift_moves_curve() {
        let d = nmos();
        let shifted = d.with_vth_shift(0.1);
        // Same current at a 0.1 V higher drive.
        let a = d.saturation_current(0.4);
        let b = shifted.saturation_current(0.5);
        assert!((a / b - 1.0).abs() < 1e-9);
    }

    #[test]
    fn beta_scale_scales_current() {
        let d = nmos();
        let doubled = d.with_beta_scale(2.0);
        let v = 0.6;
        let ratio = (doubled.saturation_current(v) - 1e-12) / (d.saturation_current(v) - 1e-12);
        assert!((ratio - 2.0).abs() < 1e-6);
    }

    #[test]
    fn leakage_floor_present() {
        let d = nmos();
        // Even with the gate at 0 the current never drops to zero.
        assert!(d.saturation_current(0.0) >= 1e-12);
    }

    #[test]
    fn transconductance_positive_and_peaks_above_threshold() {
        let d = nmos();
        let gm_sub = d.transconductance(0.1);
        let gm_on = d.transconductance(0.8);
        assert!(gm_sub > 0.0);
        assert!(gm_on > gm_sub);
    }

    #[test]
    fn pmos_uses_pmos_beta() {
        let tech = TechParams::cmos_45nm();
        let n = Mosfet::nmos(&tech);
        let p = Mosfet::pmos(&tech);
        assert!(n.saturation_current(0.8) > p.saturation_current(0.8));
        assert_eq!(p.polarity(), Polarity::Pmos);
    }
}
