//! Fleet-serving determinism: every session served by a [`Fleet`] must
//! be bit-identical to running that session's pipeline alone, for any
//! worker count, any task-feeding order, and coalescing on or off.
//!
//! This is the serving layer's whole contract — cross-agent likelihood
//! batching is only admissible because the counter-based noise streams
//! and the batch↔scalar evaluation guarantees make the coalesced
//! evaluation a pure re-partitioning of each session's solo work.

use navicim::core::localization::LocalizerConfig;
use navicim::core::pipeline::{FrameReport, GateConfig, HysteresisConfig, LocalizationPipeline};
use navicim::core::registry::{CIM_HMGM, DIGITAL_GMM};
use navicim::scene::dataset::{LocalizationConfig, LocalizationDataset};
use navicim::serve::{Fleet, FleetConfig, TaskOrder};

fn dataset() -> LocalizationDataset {
    LocalizationDataset::generate(
        &LocalizationConfig {
            image_width: 24,
            image_height: 18,
            map_points: 600,
            frames: 6,
            ..LocalizationConfig::default()
        },
        11,
    )
    .expect("dataset generates")
}

fn config() -> LocalizerConfig {
    LocalizerConfig {
        num_particles: 120,
        pixel_stride: 7,
        components: 8,
        // A gated digital+analog pair so coalesced rounds route one
        // mega-batch per slot and sessions migrate between slots.
        gate: GateConfig::gated(DIGITAL_GMM, CIM_HMGM).with_hysteresis(HysteresisConfig {
            analog_enter: 0.12,
            digital_enter: 0.2,
            dwell: 2,
            start: 0,
        }),
        seed: 5,
        ..LocalizerConfig::default()
    }
}

const AGENTS: usize = 3;
const SEED_BASE: u64 = 1000;

/// Per-session solo runs: the parity baseline every fleet mode must hit.
fn solo_reports(
    prototype: &LocalizationPipeline,
    ds: &LocalizationDataset,
) -> Vec<Vec<FrameReport>> {
    (0..AGENTS)
        .map(|i| {
            let mut session = prototype
                .fork_session(SEED_BASE + i as u64)
                .expect("fork succeeds");
            session.run(ds).expect("solo run succeeds").frames
        })
        .collect()
}

#[test]
fn fleet_is_bit_identical_to_solo_runs_across_schedules() {
    let ds = dataset();
    let prototype = LocalizationPipeline::build(&ds, config()).expect("prototype builds");
    let solo = solo_reports(&prototype, &ds);

    // Workers × coalescing × feeding order: every schedule must produce
    // byte-for-byte the solo frame reports.
    let schedules = [
        (1, false, TaskOrder::Forward),
        (1, true, TaskOrder::Forward),
        (2, true, TaskOrder::Reverse),
        (2, false, TaskOrder::Shuffled(42)),
        (4, true, TaskOrder::Shuffled(42)),
        (4, false, TaskOrder::Reverse),
    ];
    for (workers, coalesce, order) in schedules {
        let mut fleet = Fleet::new(
            &prototype,
            AGENTS,
            SEED_BASE,
            FleetConfig {
                workers,
                coalesce,
                order,
            },
        )
        .expect("fleet builds");
        let reports = fleet.run(&ds).expect("fleet run succeeds");
        assert_eq!(
            reports, solo,
            "fleet diverged from solo runs (workers={workers}, \
             coalesce={coalesce}, order={order:?})"
        );
    }
}

#[test]
fn coalesced_sessions_commit_solo_backend_stats() {
    // Evaluations routed through the fleet evaluator must land in each
    // *session's* stats exactly as a solo run would book them.
    let ds = dataset();
    let prototype = LocalizationPipeline::build(&ds, config()).expect("prototype builds");
    let mut fleet =
        Fleet::new(&prototype, AGENTS, SEED_BASE, FleetConfig::default()).expect("fleet builds");
    fleet.run(&ds).expect("fleet run succeeds");
    for i in 0..AGENTS {
        let mut solo = prototype
            .fork_session(SEED_BASE + i as u64)
            .expect("fork succeeds");
        solo.run(&ds).expect("solo run succeeds");
        for slot in 0..solo.num_backends() {
            assert_eq!(
                fleet.session(i).backend(slot).stats(),
                solo.backend(slot).stats(),
                "session {i} slot {slot} stats diverged"
            );
        }
    }
}

#[test]
fn fleet_latencies_are_recorded_per_round() {
    let ds = dataset();
    let prototype = LocalizationPipeline::build(&ds, config()).expect("prototype builds");
    let mut fleet =
        Fleet::new(&prototype, AGENTS, SEED_BASE, FleetConfig::default()).expect("fleet builds");
    let controls = ds.control_deltas();
    fleet
        .step_round(&controls[0], &ds.frames[1].depth, ds.frames[1].pose)
        .expect("round succeeds");
    assert_eq!(fleet.last_latencies_ns().len(), AGENTS);
    assert!(fleet.last_latencies_ns().iter().all(|&ns| ns > 0));
}
