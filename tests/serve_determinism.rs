//! Fleet-serving determinism: every session served by a [`Fleet`] must
//! be bit-identical to running that session's pipeline alone, for any
//! worker count, any task-feeding order, and coalescing on or off.
//!
//! This is the serving layer's whole contract — cross-agent likelihood
//! batching is only admissible because the counter-based noise streams
//! and the batch↔scalar evaluation guarantees make the coalesced
//! evaluation a pure re-partitioning of each session's solo work.

use navicim::core::localization::LocalizerConfig;
use navicim::core::pipeline::{
    FaultDetectorConfig, FrameReport, GateConfig, HysteresisConfig, LocalizationPipeline,
    SafeModeConfig,
};
use navicim::core::registry::{CIM_HMGM, DIGITAL_GMM};
use navicim::math::geom::Pose;
use navicim::scene::camera::DepthImage;
use navicim::scene::dataset::{LocalizationConfig, LocalizationDataset};
use navicim::serve::{Fleet, FleetConfig, TaskOrder};

fn dataset() -> LocalizationDataset {
    LocalizationDataset::generate(
        &LocalizationConfig {
            image_width: 24,
            image_height: 18,
            map_points: 600,
            frames: 6,
            ..LocalizationConfig::default()
        },
        11,
    )
    .expect("dataset generates")
}

fn config() -> LocalizerConfig {
    LocalizerConfig {
        num_particles: 120,
        pixel_stride: 7,
        components: 8,
        // A gated digital+analog pair so coalesced rounds route one
        // mega-batch per slot and sessions migrate between slots.
        gate: GateConfig::gated(DIGITAL_GMM, CIM_HMGM).with_hysteresis(HysteresisConfig {
            analog_enter: 0.12,
            digital_enter: 0.2,
            dwell: 2,
            start: 0,
        }),
        seed: 5,
        ..LocalizerConfig::default()
    }
}

const AGENTS: usize = 3;
const SEED_BASE: u64 = 1000;

/// Per-session solo runs: the parity baseline every fleet mode must hit.
fn solo_reports(
    prototype: &LocalizationPipeline,
    ds: &LocalizationDataset,
) -> Vec<Vec<FrameReport>> {
    (0..AGENTS)
        .map(|i| {
            let mut session = prototype
                .fork_session(SEED_BASE + i as u64)
                .expect("fork succeeds");
            session.run(ds).expect("solo run succeeds").frames
        })
        .collect()
}

#[test]
fn fleet_is_bit_identical_to_solo_runs_across_schedules() {
    let ds = dataset();
    let prototype = LocalizationPipeline::build(&ds, config()).expect("prototype builds");
    let solo = solo_reports(&prototype, &ds);

    // Workers × coalescing × feeding order: every schedule must produce
    // byte-for-byte the solo frame reports.
    let schedules = [
        (1, false, TaskOrder::Forward),
        (1, true, TaskOrder::Forward),
        (2, true, TaskOrder::Reverse),
        (2, false, TaskOrder::Shuffled(42)),
        (4, true, TaskOrder::Shuffled(42)),
        (4, false, TaskOrder::Reverse),
    ];
    for (workers, coalesce, order) in schedules {
        let mut fleet = Fleet::new(
            &prototype,
            AGENTS,
            SEED_BASE,
            FleetConfig {
                workers,
                coalesce,
                order,
            },
        )
        .expect("fleet builds");
        let reports = fleet.run(&ds).expect("fleet run succeeds");
        assert_eq!(
            reports, solo,
            "fleet diverged from solo runs (workers={workers}, \
             coalesce={coalesce}, order={order:?})"
        );
    }
}

#[test]
fn coalesced_sessions_commit_solo_backend_stats() {
    // Evaluations routed through the fleet evaluator must land in each
    // *session's* stats exactly as a solo run would book them.
    let ds = dataset();
    let prototype = LocalizationPipeline::build(&ds, config()).expect("prototype builds");
    let mut fleet =
        Fleet::new(&prototype, AGENTS, SEED_BASE, FleetConfig::default()).expect("fleet builds");
    fleet.run(&ds).expect("fleet run succeeds");
    for i in 0..AGENTS {
        let mut solo = prototype
            .fork_session(SEED_BASE + i as u64)
            .expect("fork succeeds");
        solo.run(&ds).expect("solo run succeeds");
        for slot in 0..solo.num_backends() {
            assert_eq!(
                fleet.session(i).backend(slot).stats(),
                solo.backend(slot).stats(),
                "session {i} slot {slot} stats diverged"
            );
        }
    }
}

const SWEEP_FRAMES: usize = 16;
const FAULT_WINDOW: std::ops::Range<usize> = 8..11;

/// A clean wrap-consistent frame stream for the sweep: the scenario
/// layer's looping cursor gives more rounds than the dataset has frames
/// without the odometry discontinuity a naive replay would inject.
fn sweep_frames(ds: &LocalizationDataset) -> Vec<navicim::scenario::ScenarioFrame> {
    let script = navicim::scenario::ScenarioScript::clean("fleet-sweep", SWEEP_FRAMES);
    navicim::scenario::ScenarioStream::new(ds, &script)
        .expect("stream builds")
        .collect()
}

/// Drives a fleet through the clean stream with per-agent inputs:
/// `faulted` agents receive a fully blind depth image on the frames in
/// [`FAULT_WINDOW`], everyone else flies clean.
fn run_faulted_sweep(
    prototype: &LocalizationPipeline,
    ds: &LocalizationDataset,
    config: FleetConfig,
    faulted: &[usize],
) -> Vec<Vec<FrameReport>> {
    let blind = DepthImage::new(ds.frames[0].depth.width(), ds.frames[0].depth.height());
    let mut fleet = Fleet::new(prototype, AGENTS, SEED_BASE, config).expect("fleet builds");
    let mut per_agent: Vec<Vec<FrameReport>> = (0..AGENTS).map(|_| Vec::new()).collect();
    for f in sweep_frames(ds) {
        let depths: Vec<DepthImage> = (0..AGENTS)
            .map(|i| {
                if faulted.contains(&i) && FAULT_WINDOW.contains(&f.frame) {
                    blind.clone()
                } else {
                    f.depth.clone()
                }
            })
            .collect();
        let controls_each: Vec<Pose> = vec![f.control; AGENTS];
        let truths: Vec<Pose> = vec![f.truth; AGENTS];
        let reports = fleet
            .step_round_each(&controls_each, &depths, &truths)
            .expect("per-agent round succeeds");
        for (i, r) in reports.iter().enumerate() {
            per_agent[i].push(r.clone());
        }
    }
    per_agent
}

/// The parity baseline: one agent's solo replay of the same sweep.
fn solo_sweep(
    prototype: &LocalizationPipeline,
    ds: &LocalizationDataset,
    agent: usize,
    faulted: bool,
) -> Vec<FrameReport> {
    let blind = DepthImage::new(ds.frames[0].depth.width(), ds.frames[0].depth.height());
    let mut session = prototype
        .fork_session(SEED_BASE + agent as u64)
        .expect("fork succeeds");
    sweep_frames(ds)
        .into_iter()
        .map(|f| {
            let depth = if faulted && FAULT_WINDOW.contains(&f.frame) {
                &blind
            } else {
                &f.depth
            };
            session
                .step(&f.control, depth, f.truth)
                .expect("solo step succeeds")
        })
        .collect()
}

#[test]
fn per_agent_faults_stay_isolated_in_coalesced_rounds() {
    let ds = dataset();
    let prototype = LocalizationPipeline::build(&ds, config())
        .expect("prototype builds")
        .with_safe_mode(SafeModeConfig {
            // Tuned above the clean-flight wobble on this tiny config:
            // slot-migration transients legitimately swing the
            // innovation by ~±20, while a blind frame reads ~-1000.
            detector: FaultDetectorConfig {
                drift: 4.0,
                threshold: 50.0,
                warmup: 2,
            },
            hold_frames: 2,
            recovery_innovation: -1.0,
        })
        .expect("safe mode arms");
    const FAULTED: usize = 1;
    let fleet_reports = run_faulted_sweep(&prototype, &ds, FleetConfig::default(), &[FAULTED]);

    // The faulted agent noticed: its detector latched and safe mode
    // engaged. Its neighbors never did.
    assert!(
        fleet_reports[FAULTED].iter().any(|r| r.safe_mode),
        "faulted agent never entered safe mode"
    );
    for (i, reports) in fleet_reports.iter().enumerate() {
        if i != FAULTED {
            assert!(
                reports.iter().all(|r| !r.fault_active && !r.safe_mode),
                "clean agent {i} raised a fault alarm"
            );
        }
    }

    // Isolation: every agent — including the faulted one — is
    // bit-identical to its solo replay of the same per-agent inputs; a
    // neighbor's fault leaks nothing through the coalesced mega-batch.
    for i in 0..AGENTS {
        let solo = solo_sweep(&prototype, &ds, i, i == FAULTED);
        assert_eq!(fleet_reports[i], solo, "agent {i} diverged from solo");
    }

    // And the per-agent path keeps the full determinism contract: the
    // same faulted sweep is bit-identical across coalescing, worker
    // count, and feeding order.
    for (workers, coalesce, order) in [
        (1, false, TaskOrder::Forward),
        (2, true, TaskOrder::Reverse),
        (4, false, TaskOrder::Shuffled(42)),
    ] {
        let again = run_faulted_sweep(
            &prototype,
            &ds,
            FleetConfig {
                workers,
                coalesce,
                order,
            },
            &[FAULTED],
        );
        assert_eq!(
            again, fleet_reports,
            "faulted sweep diverged (workers={workers}, coalesce={coalesce}, order={order:?})"
        );
    }
}

#[test]
fn step_round_each_rejects_mismatched_input_lengths() {
    let ds = dataset();
    let prototype = LocalizationPipeline::build(&ds, config()).expect("prototype builds");
    let mut fleet =
        Fleet::new(&prototype, AGENTS, SEED_BASE, FleetConfig::default()).expect("fleet builds");
    let controls = ds.control_deltas();
    let short_controls = vec![controls[0]; AGENTS - 1];
    let depths = vec![ds.frames[1].depth.clone(); AGENTS];
    let truths = vec![ds.frames[1].pose; AGENTS];
    let err = fleet
        .step_round_each(&short_controls, &depths, &truths)
        .expect_err("length mismatch must be rejected");
    assert!(err.to_string().contains("per-agent round"));
}

#[test]
fn fleet_latencies_are_recorded_per_round() {
    let ds = dataset();
    let prototype = LocalizationPipeline::build(&ds, config()).expect("prototype builds");
    let mut fleet =
        Fleet::new(&prototype, AGENTS, SEED_BASE, FleetConfig::default()).expect("fleet builds");
    let controls = ds.control_deltas();
    fleet
        .step_round(&controls[0], &ds.frames[1].depth, ds.frames[1].pose)
        .expect("round succeeds");
    assert_eq!(fleet.last_latencies_ns().len(), AGENTS);
    assert!(fleet.last_latencies_ns().iter().all(|&ns| ns > 0));
}
