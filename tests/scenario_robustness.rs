//! Property sweep over the fault-injection layer: scenario streams stay
//! deterministic and schedule-faithful for arbitrary fault windows, and
//! the safe-mode response holds its invariants across fault onset ×
//! gate policy — including slot-switch-during-fault interleavings,
//! where a gate migration lands mid-burst on a cold innovation tracker.

use navicim::core::localization::LocalizerConfig;
use navicim::core::pipeline::{
    FaultDetectorConfig, GateConfig, HysteresisConfig, LocalizationPipeline, MultiSignalConfig,
    NoiseInflation, SafeModeConfig, ANALOG_SLOT, DIGITAL_SLOT,
};
use navicim::core::registry::{CIM_HMGM, DIGITAL_GMM};
use navicim::scenario::{FaultEvent, FaultKind, ScenarioScript, ScenarioStream};
use navicim::scene::dataset::{LocalizationConfig, LocalizationDataset};
use proptest::prelude::*;

fn dataset() -> LocalizationDataset {
    LocalizationDataset::generate(
        &LocalizationConfig {
            image_width: 24,
            image_height: 18,
            map_points: 600,
            frames: 8,
            ..LocalizationConfig::default()
        },
        7,
    )
    .expect("dataset generates")
}

/// The gate policies the safe-mode sweep interleaves with fault onset.
/// Index 0 pins the analog slot (a stable innovation bus, so detection
/// is guaranteed); 1 and 2 migrate between slots mid-run, exercising
/// the cold-tracker and dwell interactions.
fn gate_for(policy: usize) -> GateConfig {
    match policy {
        0 => GateConfig::always(vec![DIGITAL_GMM, CIM_HMGM], ANALOG_SLOT),
        1 => GateConfig::gated(DIGITAL_GMM, CIM_HMGM).with_hysteresis(HysteresisConfig {
            analog_enter: 0.10,
            digital_enter: 0.14,
            dwell: 2,
            start: DIGITAL_SLOT,
        }),
        _ => GateConfig::multi_signal(
            DIGITAL_GMM,
            CIM_HMGM,
            MultiSignalConfig {
                spread: HysteresisConfig {
                    analog_enter: 0.10,
                    digital_enter: 0.14,
                    dwell: 2,
                    start: DIGITAL_SLOT,
                },
                innovation_wake: -5.0,
                ess_wake: 0.02,
            },
        ),
    }
}

fn armed_pipeline(ds: &LocalizationDataset, gate: GateConfig) -> LocalizationPipeline {
    let config = LocalizerConfig {
        num_particles: 120,
        pixel_stride: 7,
        components: 8,
        init_spread: 0.1,
        init_yaw_spread: 0.05,
        gate,
        seed: 3,
        ..LocalizerConfig::default()
    };
    LocalizationPipeline::build(ds, config)
        .expect("pipeline builds")
        .with_safe_mode(SafeModeConfig {
            // An order of magnitude above this regime's clean-flight
            // CUSUM excursions; a blind frame reads ~-1000.
            detector: FaultDetectorConfig {
                drift: 4.0,
                threshold: 60.0,
                warmup: 2,
            },
            hold_frames: 2,
            recovery_innovation: -1.0,
        })
        .expect("safe mode arms")
        .with_noise_inflation(NoiseInflation::new(0.0, 1.0, 4.0).expect("valid inflation"))
        .expect("inflation validates")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any scheduled window and depth-fault kind, the stream's
    /// per-frame fault flags match the schedule exactly, faulted depth
    /// is mutated only inside the window, and two replays of the same
    /// script are bit-identical.
    #[test]
    fn stream_is_schedule_faithful_and_replayable(
        at_frame in 0usize..20,
        duration in 1usize..5,
        kind_pick in 0usize..4,
        fraction in 0.2f64..1.0,
    ) {
        let kind = match kind_pick {
            0 => FaultKind::Dropout { fraction },
            1 => FaultKind::StuckValue { depth_m: 2.0 },
            2 => FaultKind::Spoof { depth_m: 0.8, fraction },
            _ => FaultKind::LowTexture,
        };
        let frames = at_frame + duration + 4;
        let script = ScenarioScript::clean("sweep", frames).with_event(FaultEvent {
            at_frame,
            duration,
            kind,
        });
        let ds = dataset();
        let a: Vec<_> = ScenarioStream::new(&ds, &script).expect("stream").collect();
        let b: Vec<_> = ScenarioStream::new(&ds, &script).expect("stream").collect();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), frames);
        let clean: Vec<_> = ScenarioStream::new(&ds, &ScenarioScript::clean("c", frames))
            .expect("stream")
            .collect();
        for (f, c) in a.iter().zip(&clean) {
            prop_assert_eq!(f.fault_active, script.fault_active_at(f.frame));
            prop_assert_eq!(f.control, c.control);
            prop_assert_eq!(f.truth, c.truth);
            if !f.fault_active {
                prop_assert_eq!(&f.depth, &c.depth);
            }
        }
    }
}

proptest! {
    // Pipeline-heavy: each case is two ~20-frame localization runs.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Fault onset × gate policy: the armed pipeline never alarms
    /// before the fault, every safe-mode frame is forced onto the
    /// digital slot at the inflation ceiling, per-frame outputs stay
    /// finite, and the whole faulted run is deterministic.
    #[test]
    fn safe_mode_invariants_across_onset_and_gate(
        onset in 6usize..14,
        policy in 0usize..3,
    ) {
        let ds = dataset();
        let frames = onset + 10;
        let script = ScenarioScript::clean("burst", frames).with_event(FaultEvent {
            at_frame: onset,
            duration: 3,
            kind: FaultKind::Dropout { fraction: 1.0 },
        });
        let run = |()| -> Vec<_> {
            let mut pipeline = armed_pipeline(&ds, gate_for(policy));
            navicim::scenario::run_scenario(&mut pipeline, &ds, &script)
                .expect("scenario runs")
                .reports
        };
        let reports = run(());
        let ceiling = 4.0;
        for (t, r) in reports.iter().enumerate() {
            // No false alarm on the clean prefix.
            if t < onset {
                prop_assert!(!r.fault_active, "false alarm at clean frame {t}");
                prop_assert!(!r.safe_mode);
            }
            // The safe-mode override: digital slot, ceiling noise.
            if r.safe_mode {
                prop_assert_eq!(r.slot, DIGITAL_SLOT);
                prop_assert_eq!(r.noise_scale, ceiling);
            }
            // Numeric invariants hold even on fully blind frames.
            prop_assert!(r.summary.error.is_finite());
            prop_assert!(r.summary.spread.is_finite());
            prop_assert!(r.noise_scale.is_finite() && r.noise_scale >= 1.0);
            prop_assert!(r.nees >= 0.0);
        }
        // A pinned-analog gate guarantees a warm innovation bus, so the
        // blind burst must be caught there (migrating gates may
        // legitimately miss it if a switch lands mid-burst on a cold
        // tracker).
        if policy == 0 {
            prop_assert!(
                reports[onset..].iter().any(|r| r.fault_active),
                "pinned-analog run never detected the blind burst at {onset}"
            );
        }
        // Bit-identical replay.
        prop_assert_eq!(reports, run(()));
    }
}
