//! Runtime allocation sanitizer: the zero-alloc steady-state contract,
//! hard-asserted through the counting global allocator.
//!
//! Compiled only with `--features alloc-audit`, which swaps the test
//! binary's global allocator for [`navicim::math::alloc_audit`]'s
//! counting wrapper. Each test warms a kernel/pipeline until its scratch
//! buffers have grown to the working set, then re-runs the exact same
//! workload and asserts **zero** heap acquisitions (allocs + reallocs).
//!
//! The contract covers the sequential production paths only — a single
//! chunk for the batch kernels, `workers: 1` for the fleet. Threaded
//! paths allocate by design (thread spawning already does) and are
//! outside the audited scope.
//!
//! The allocator counters are process-global and `cargo test` runs tests
//! in parallel threads, so every exact-zero assertion serializes behind
//! [`LOCK`]; anything else would count a neighbouring test's allocations.

#![cfg(feature = "alloc-audit")]

use std::sync::Mutex;

use navicim::analog::engine::{CimEngineConfig, HmgmCimEngine};
use navicim::analog::mapping::SpaceMap;
use navicim::backend::par::ChunkPolicy;
use navicim::backend::PointBatch;
use navicim::core::localization::LocalizerConfig;
use navicim::core::pipeline::{GateConfig, LocalizationPipeline};
use navicim::core::registry::DIGITAL_GMM;
use navicim::device::params::TechParams;
use navicim::gmm::gaussian::{Covariance, Gmm};
use navicim::gmm::hmg::{HmgKernel, HmgmModel};
use navicim::math::alloc_audit;
use navicim::scene::dataset::{LocalizationConfig, LocalizationDataset};
use navicim::serve::{Fleet, FleetConfig, TaskOrder};

/// Serializes every exact-zero assertion: the counting allocator is
/// process-global, so a concurrently running test would be charged to
/// the audited region.
static LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` under the allocation counter and asserts it acquired zero
/// heap memory (no allocs, no growing reallocs). Frees are permitted —
/// the contract is "no acquisition in steady state", and a `Drop` of
/// pre-existing capacity is not an acquisition.
fn assert_zero_alloc<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let (value, delta) = alloc_audit::audited(f);
    assert_eq!(
        delta.acquisitions(),
        0,
        "{label}: steady-state pass acquired heap memory \
         (allocs {}, reallocs {})",
        delta.allocs,
        delta.reallocs,
    );
    value
}

/// One chunk, no worker threads: the sequential production path whose
/// steady state the zero-alloc contract covers.
fn sequential(n: usize) -> ChunkPolicy {
    ChunkPolicy::exact(n, 1)
}

fn query_batch(dim: usize, n: usize) -> PointBatch {
    let mut batch = PointBatch::new(dim);
    for i in 0..n {
        let t = i as f64 / n as f64;
        let point: Vec<f64> = (0..dim)
            .map(|d| (t - 0.5) * (1.0 + d as f64 * 0.1))
            .collect();
        batch.push(&point);
    }
    batch
}

#[test]
fn gmm_batch_kernel_is_zero_alloc_when_warm() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut gmm = Gmm::new(
        vec![0.6, 0.4],
        vec![vec![-0.5, 0.0, 0.2], vec![0.6, 0.3, -0.4]],
        Covariance::Diagonal(vec![vec![0.3, 0.3, 0.3], vec![0.4, 0.4, 0.4]]),
    )
    .expect("gmm builds");
    let batch = query_batch(3, 64);
    let mut out = vec![0.0; batch.len()];
    let policy = sequential(batch.len());
    // Warm pass sizes the struct-held scratch to the component count.
    gmm.log_likelihood_into_policy(&batch, &mut out, policy);
    let warm = out.clone();
    assert_zero_alloc("Gmm::log_likelihood_into_policy", || {
        gmm.log_likelihood_into_policy(&batch, &mut out, policy);
    });
    assert_eq!(out, warm, "steady-state pass changed the output bits");
}

#[test]
fn hmgm_batch_kernel_is_zero_alloc_when_warm() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let k1 = HmgKernel::new(vec![-0.5, 0.0, 0.2], vec![0.4; 3], 1.0).expect("kernel");
    let k2 = HmgKernel::new(vec![0.6, 0.3, -0.4], vec![0.5; 3], 1.0).expect("kernel");
    let mut model = HmgmModel::new(vec![1.0, 0.5], vec![k1, k2]).expect("model builds");
    let batch = query_batch(3, 64);
    let mut out = vec![0.0; batch.len()];
    let policy = sequential(batch.len());
    model.log_likelihood_into_policy(&batch, &mut out, policy);
    let warm = out.clone();
    assert_zero_alloc("HmgmModel::log_likelihood_into_policy", || {
        model.log_likelihood_into_policy(&batch, &mut out, policy);
    });
    assert_eq!(out, warm, "steady-state pass changed the output bits");
}

#[test]
fn cim_engine_batch_path_is_zero_alloc_when_warm() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let pts = vec![vec![-1.0, -1.0, -1.0], vec![1.0, 1.0, 1.0]];
    let map = SpaceMap::fit_to_points(&pts, 0.15, 0.85, 0.2).expect("map fits");
    let tech = TechParams::cmos_45nm();
    let (floor, ceil) = HmgmCimEngine::recommended_sigma_bounds(&tech, &map);
    let sigma = (floor * 2.0).min(ceil);
    let k1 = HmgKernel::new(vec![-0.5, 0.0, 0.2], vec![sigma; 3], 1.0).expect("kernel");
    let k2 = HmgKernel::new(vec![0.6, 0.3, -0.4], vec![sigma; 3], 1.0).expect("kernel");
    let model = HmgmModel::new(vec![1.0, 0.5], vec![k1, k2]).expect("model builds");
    let mut engine =
        HmgmCimEngine::build(&model, map, CimEngineConfig::default()).expect("engine builds");
    let batch = query_batch(3, 64);
    let mut out = vec![0.0; batch.len()];
    let policy = sequential(batch.len());
    // Two warm passes: the first sizes the scratch, and the engine's
    // noise stream advances per evaluation, so outputs differ between
    // passes by design — only the allocation count must reach zero.
    engine.log_likelihood_into_chunked(&batch, &mut out, policy);
    engine.log_likelihood_into_chunked(&batch, &mut out, policy);
    assert_zero_alloc("HmgmCimEngine::log_likelihood_into_chunked", || {
        engine.log_likelihood_into_chunked(&batch, &mut out, policy);
    });
}

fn audit_dataset() -> LocalizationDataset {
    LocalizationDataset::generate(
        &LocalizationConfig {
            image_width: 24,
            image_height: 18,
            map_points: 500,
            frames: 6,
            ..LocalizationConfig::default()
        },
        11,
    )
    .expect("dataset generates")
}

fn audit_config() -> LocalizerConfig {
    LocalizerConfig {
        num_particles: 100,
        pixel_stride: 7,
        components: 8,
        gate: GateConfig::single(),
        backend: DIGITAL_GMM.into(),
        seed: 5,
        ..LocalizerConfig::default()
    }
}

/// Drives `step` across the dataset twice and asserts the second pass —
/// identical observations, so identical per-frame working sets — is
/// allocation-free.
#[test]
fn pipeline_step_is_zero_alloc_after_warm_pass() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let ds = audit_dataset();
    let mut pipeline = LocalizationPipeline::build(&ds, audit_config()).expect("pipeline builds");
    let controls = ds.control_deltas();
    for (t, control) in controls.iter().enumerate() {
        pipeline
            .step(control, &ds.frames[t + 1].depth, ds.frames[t + 1].pose)
            .expect("warm-up step");
    }
    for (t, control) in controls.iter().enumerate() {
        assert_zero_alloc(&format!("LocalizationPipeline::step frame {t}"), || {
            pipeline
                .step(control, &ds.frames[t + 1].depth, ds.frames[t + 1].pose)
                .expect("steady-state step");
        });
    }
}

/// Same contract for the fleet's sequential (`workers: 1`) coalesced
/// round: after one pass over the dataset, further rounds must not
/// acquire heap memory.
#[test]
fn fleet_step_round_is_zero_alloc_after_warm_pass() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let ds = audit_dataset();
    let prototype = LocalizationPipeline::build(&ds, audit_config()).expect("prototype builds");
    let mut fleet = Fleet::new(
        &prototype,
        3,
        900,
        FleetConfig {
            workers: 1,
            coalesce: true,
            order: TaskOrder::Forward,
        },
    )
    .expect("fleet builds");
    let controls = ds.control_deltas();
    for (t, control) in controls.iter().enumerate() {
        fleet
            .step_round(control, &ds.frames[t + 1].depth, ds.frames[t + 1].pose)
            .expect("warm-up round");
    }
    for (t, control) in controls.iter().enumerate() {
        assert_zero_alloc(&format!("Fleet::step_round round {t}"), || {
            fleet
                .step_round(control, &ds.frames[t + 1].depth, ds.frames[t + 1].pose)
                .expect("steady-state round");
        });
    }
}
