//! Workspace-level property-based tests on the core invariants that the
//! paper's co-design relies on.

use navicim::analog::engine::{CimEngineConfig, HmgmCimEngine};
use navicim::analog::mapping::SpaceMap;
use navicim::backend::par::ChunkPolicy;
use navicim::backend::{LikelihoodBackend, PointBatch};
use navicim::core::localization::LocalizerConfig;
use navicim::core::pipeline::{
    ControlSource, GateConfig, GateContext, GatePolicy, HysteresisConfig, HysteresisGate,
    LocalizationPipeline, MultiSignalConfig, MultiSignalGate, NoiseInflation, PeriodicRefresh,
    PeriodicRefreshConfig, UncertaintySignals, VoStage, ANALOG_SLOT, DIGITAL_SLOT,
};
use navicim::core::registry::{CIM_HMGM, DIGITAL_GMM};
use navicim::core::vo::{AdaptiveMcConfig, AdaptiveMcPolicy, BayesianVo, VoPipelineConfig};
use navicim::device::inverter::GaussianLikeCell;
use navicim::device::params::TechParams;
use navicim::gmm::gaussian::{Covariance, Gmm};
use navicim::gmm::hmg::{HmgKernel, HmgmModel};
use navicim::math::geom::{Pose, Quat, Vec3};
use navicim::math::quant::Quantizer;
use navicim::math::rng::Pcg32;
use navicim::math::sample::{effective_sample_size, ResampleScheme};
use navicim::nn::quant::QuantMatrix;
use navicim::sram::cim_macro::{MacroConfig, SramCimMacro};
use navicim::sram::reuse::{greedy_order, hamming, path_cost};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The inverter bell peaks at its programmed centre for any on-rail
    /// centre and realizable width.
    #[test]
    fn inverter_peak_at_center(
        center in 0.2f64..0.8,
        overlap in 0.1f64..0.6,
        offset in 0.05f64..0.2,
    ) {
        let tech = TechParams::cmos_45nm();
        let cell = GaussianLikeCell::with_center_width(&tech, center, overlap)
            .expect("valid overlap");
        let peak = cell.current(center);
        prop_assert!(peak > cell.current(center - offset));
        prop_assert!(peak > cell.current(center + offset));
    }

    /// HMG kernels never exceed their amplitude and are maximal at the
    /// mean.
    #[test]
    fn hmg_bounded_by_amplitude(
        mx in -2.0f64..2.0,
        my in -2.0f64..2.0,
        sx in 0.05f64..1.0,
        sy in 0.05f64..1.0,
        amp in 0.1f64..10.0,
        qx in -3.0f64..3.0,
        qy in -3.0f64..3.0,
    ) {
        let k = HmgKernel::new(vec![mx, my], vec![sx, sy], amp).expect("valid kernel");
        let v = k.eval(&[qx, qy]);
        prop_assert!(v > 0.0);
        prop_assert!(v <= amp * (1.0 + 1e-12));
        prop_assert!(k.eval(&[mx, my]) >= v);
        // Harmonic mean dominates the product everywhere.
        prop_assert!(v >= k.eval_product(&[qx, qy]) - 1e-15);
    }

    /// Pose composition with the inverse is the identity for arbitrary
    /// poses.
    #[test]
    fn pose_inverse_roundtrip(
        x in -10.0f64..10.0,
        y in -10.0f64..10.0,
        z in -10.0f64..10.0,
        roll in -3.0f64..3.0,
        pitch in -1.4f64..1.4,
        yaw in -3.0f64..3.0,
    ) {
        let pose = Pose::from_position_euler(Vec3::new(x, y, z), roll, pitch, yaw);
        let ident = pose.compose(pose.inverse());
        prop_assert!(ident.translation.norm() < 1e-9);
        prop_assert!(ident.rotation.angle_to(Quat::IDENTITY) < 1e-9);
    }

    /// Quantize/dequantize stays within half a step inside the range.
    #[test]
    fn quantizer_error_bound(
        bits in 2u32..12,
        range in 0.1f64..100.0,
        frac in -1.0f64..1.0,
    ) {
        let q = Quantizer::new(bits, range).expect("valid quantizer");
        let x = frac * range;
        prop_assert!((x - q.fake_quantize(x)).abs() <= q.max_round_error() + 1e-12);
    }

    /// Resampling preserves particle count and only selects valid indices,
    /// and ESS never exceeds the population size.
    #[test]
    fn resampling_invariants(
        seed in 0u64..1000,
        n in 2usize..100,
        scheme_idx in 0usize..4,
    ) {
        let mut rng = Pcg32::seed_from_u64(seed);
        use navicim::math::rng::{Rng64, SampleExt};
        let weights: Vec<f64> = (0..n).map(|_| rng.next_f64() + 1e-9).collect();
        prop_assert!(effective_sample_size(&weights) <= n as f64 + 1e-9);
        let scheme = ResampleScheme::ALL[scheme_idx];
        let idx = scheme.resample(&weights, &mut rng);
        prop_assert_eq!(idx.len(), n);
        prop_assert!(idx.iter().all(|&i| i < n));
        let _ = rng.sample_index(n);
    }

    /// The macro's compute reuse is exact for arbitrary code sequences.
    #[test]
    fn macro_reuse_exactness(
        seed in 0u64..500,
        rows in 1usize..8,
        cols in 1usize..8,
        steps in 1usize..6,
    ) {
        let mut rng = Pcg32::seed_from_u64(seed);
        use navicim::math::rng::SampleExt;
        let codes: Vec<i64> = (0..rows * cols)
            .map(|_| rng.sample_index(15) as i64 - 7)
            .collect();
        let config = MacroConfig { adc_bits: 0, reuse: true, ..MacroConfig::default() };
        let mut with = SramCimMacro::new(config);
        with.program_layer(0, &codes, rows, cols).expect("programs");
        let mut without = SramCimMacro::new(MacroConfig {
            adc_bits: 0,
            reuse: false,
            ..MacroConfig::default()
        });
        without.program_layer(0, &codes, rows, cols).expect("programs");
        let mask = vec![true; rows];
        for _ in 0..steps {
            let input: Vec<i64> = (0..cols)
                .map(|_| rng.sample_index(15) as i64 - 7)
                .collect();
            let a = with.matvec(0, &input, &mask).expect("matvec");
            let b = without.matvec(0, &input, &mask).expect("matvec");
            prop_assert_eq!(a, b);
        }
        prop_assert!(with.stats().macs_executed <= without.stats().macs_executed);
    }

    /// Greedy mask ordering is a permutation and never costs more than
    /// twice the identity order's switching (sanity bound; in practice it
    /// is below it).
    #[test]
    fn ordering_invariants(seed in 0u64..500, t in 2usize..20, len in 4usize..64) {
        let mut rng = Pcg32::seed_from_u64(seed);
        use navicim::math::rng::SampleExt;
        let masks: Vec<Vec<bool>> = (0..t)
            .map(|_| (0..len).map(|_| rng.sample_bool(0.5)).collect())
            .collect();
        let order = greedy_order(&masks).expect("orders");
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..t).collect::<Vec<_>>());
        let identity: Vec<usize> = (0..t).collect();
        prop_assert!(path_cost(&masks, &order) <= 2 * path_cost(&masks, &identity).max(1));
        prop_assert!(hamming(&masks[0], &masks[0]) == 0);
    }

    /// The digital GMM batch path is bit-identical to sequential scalar
    /// evaluation for random diagonal mixtures and random query batches.
    #[test]
    fn gmm_batch_equals_scalar(
        seed in 0u64..500,
        k in 1usize..8,
        n in 1usize..64,
    ) {
        let mut rng = Pcg32::seed_from_u64(seed);
        use navicim::math::rng::SampleExt;
        let dim = 3;
        let mut weights: Vec<f64> = (0..k).map(|_| rng.sample_uniform(0.1, 1.0)).collect();
        let total: f64 = weights.iter().sum();
        weights.iter_mut().for_each(|w| *w /= total);
        // Renormalize exactly enough for the constructor's tolerance.
        let means: Vec<Vec<f64>> = (0..k)
            .map(|_| (0..dim).map(|_| rng.sample_uniform(-3.0, 3.0)).collect())
            .collect();
        let vars: Vec<Vec<f64>> = (0..k)
            .map(|_| (0..dim).map(|_| rng.sample_uniform(0.05, 2.0)).collect())
            .collect();
        let mut gmm = Gmm::new(weights, means, Covariance::Diagonal(vars)).expect("valid gmm");
        let mut batch = PointBatch::new(dim);
        for _ in 0..n {
            let p: Vec<f64> = (0..dim).map(|_| rng.sample_uniform(-4.0, 4.0)).collect();
            batch.push(&p);
        }
        let scalar: Vec<f64> = batch.iter().map(|p| gmm.log_pdf(p)).collect();
        let batched = gmm.log_likelihood_batch(&batch);
        prop_assert_eq!(scalar, batched);
    }

    /// The HMGM batch path is bit-identical to sequential scalar calls.
    #[test]
    fn hmgm_batch_equals_scalar(
        seed in 0u64..500,
        k in 1usize..6,
        n in 1usize..64,
    ) {
        let mut rng = Pcg32::seed_from_u64(seed);
        use navicim::math::rng::SampleExt;
        let kernels: Vec<HmgKernel> = (0..k)
            .map(|_| {
                HmgKernel::new(
                    (0..3).map(|_| rng.sample_uniform(-2.0, 2.0)).collect(),
                    (0..3).map(|_| rng.sample_uniform(0.1, 1.5)).collect(),
                    rng.sample_uniform(0.5, 2.0),
                )
                .expect("valid kernel")
            })
            .collect();
        let weights: Vec<f64> = (0..k).map(|_| rng.sample_uniform(0.1, 2.0)).collect();
        let mut model = HmgmModel::new(weights, kernels).expect("valid model");
        let mut batch = PointBatch::new(3);
        for _ in 0..n {
            let p: Vec<f64> = (0..3).map(|_| rng.sample_uniform(-3.0, 3.0)).collect();
            batch.push(&p);
        }
        let scalar: Vec<f64> = batch.iter().map(|p| model.log_likelihood(p)).collect();
        let batched = LikelihoodBackend::log_likelihood_batch(&mut model, &batch);
        prop_assert_eq!(scalar, batched);
    }

    /// The analog CIM engine's batch path is bit-identical to sequential
    /// scalar queries — including the noise-RNG stream and the
    /// EngineStats counters — for arbitrary batch sizes.
    #[test]
    fn cim_engine_batch_equals_scalar(seed in 0u64..100, n in 1usize..48) {
        let mut rng = Pcg32::seed_from_u64(seed);
        use navicim::math::rng::SampleExt;
        let pts = vec![vec![-1.0, -1.0, -1.0], vec![1.0, 1.0, 1.0]];
        let space = SpaceMap::fit_to_points(&pts, 0.15, 0.85, 0.2).expect("map fits");
        let tech = TechParams::cmos_45nm();
        let (floor, ceil) = HmgmCimEngine::recommended_sigma_bounds(&tech, &space);
        let sigma = (floor * 2.0).min(ceil);
        let model = HmgmModel::new(
            vec![1.0, 0.5],
            vec![
                HmgKernel::new(vec![-0.5, 0.0, 0.2], vec![sigma; 3], 1.0).expect("kernel"),
                HmgKernel::new(vec![0.6, 0.3, -0.4], vec![sigma; 3], 1.0).expect("kernel"),
            ],
        )
        .expect("model");
        let config = CimEngineConfig { seed, ..CimEngineConfig::default() };
        let mut scalar_engine =
            HmgmCimEngine::build(&model, space.clone(), config).expect("engine builds");
        let mut batch_engine = HmgmCimEngine::build(&model, space, config).expect("engine builds");
        let mut batch = PointBatch::new(3);
        for _ in 0..n {
            batch.push(&[
                rng.sample_uniform(-1.0, 1.0),
                rng.sample_uniform(-1.0, 1.0),
                rng.sample_uniform(-1.0, 1.0),
            ]);
        }
        let scalar: Vec<f64> = batch.iter().map(|p| scalar_engine.log_likelihood(p)).collect();
        let batched = LikelihoodBackend::log_likelihood_batch(&mut batch_engine, &batch);
        prop_assert_eq!(scalar, batched);
        prop_assert_eq!(scalar_engine.stats(), batch_engine.stats());
    }

    /// Analog batch evaluation is invariant under chunk size and worker
    /// count: for every (chunk_len, workers) pair — 1/2/4 workers ×
    /// chunk sizes 1, 7, 64 and the batch length — outputs AND
    /// EngineStats totals are bit-identical to the auto policy, and
    /// splitting the batch into consecutive sub-batch calls changes
    /// nothing either (the counter-based noise stream assigns each
    /// evaluation its absolute index). Under `--features parallel` the
    /// multi-worker cases genuinely run on threads.
    #[test]
    fn cim_engine_chunking_and_threading_invariant(seed in 0u64..40, n in 1usize..140) {
        let mut rng = Pcg32::seed_from_u64(seed ^ 0xc0de);
        use navicim::math::rng::SampleExt;
        let pts = vec![vec![-1.0, -1.0, -1.0], vec![1.0, 1.0, 1.0]];
        let space = SpaceMap::fit_to_points(&pts, 0.15, 0.85, 0.2).expect("map fits");
        let tech = TechParams::cmos_45nm();
        let (floor, ceil) = HmgmCimEngine::recommended_sigma_bounds(&tech, &space);
        let sigma = (floor * 2.0).min(ceil);
        let model = HmgmModel::new(
            vec![1.0, 0.5],
            vec![
                HmgKernel::new(vec![-0.5, 0.0, 0.2], vec![sigma; 3], 1.0).expect("kernel"),
                HmgKernel::new(vec![0.6, 0.3, -0.4], vec![sigma; 3], 1.0).expect("kernel"),
            ],
        )
        .expect("model");
        let config = CimEngineConfig { seed, ..CimEngineConfig::default() };
        let mut batch = PointBatch::new(3);
        for _ in 0..n {
            batch.push(&[
                rng.sample_uniform(-1.0, 1.0),
                rng.sample_uniform(-1.0, 1.0),
                rng.sample_uniform(-1.0, 1.0),
            ]);
        }
        let mut reference =
            HmgmCimEngine::build(&model, space.clone(), config).expect("engine builds");
        let mut expected = vec![0.0; n];
        reference.log_likelihood_into(&batch, &mut expected);
        for chunk_len in [1usize, 7, 64, n] {
            for workers in [1usize, 2, 4] {
                let mut engine =
                    HmgmCimEngine::build(&model, space.clone(), config).expect("engine builds");
                let mut out = vec![0.0; n];
                engine.log_likelihood_into_chunked(
                    &batch,
                    &mut out,
                    ChunkPolicy::exact(chunk_len, workers),
                );
                prop_assert_eq!(&out, &expected);
                prop_assert_eq!(engine.stats(), reference.stats());
            }
        }
        // Consecutive sub-batch calls cover consecutive stream ranges.
        let split = n / 2;
        let mut split_engine =
            HmgmCimEngine::build(&model, space, config).expect("engine builds");
        let mut head = PointBatch::new(3);
        let mut tail = PointBatch::new(3);
        for (i, p) in batch.iter().enumerate() {
            if i < split { head.push(p) } else { tail.push(p) }
        }
        let mut out = Vec::with_capacity(n);
        if !head.is_empty() {
            out.extend(LikelihoodBackend::log_likelihood_batch(&mut split_engine, &head));
        }
        out.extend(LikelihoodBackend::log_likelihood_batch(&mut split_engine, &tail));
        prop_assert_eq!(out, expected);
        prop_assert_eq!(split_engine.stats(), reference.stats());
    }

    /// MC-Dropout batched prediction is bit-identical to sequential
    /// scalar predictions, including the dropout-RNG stream.
    #[test]
    fn mc_dropout_batch_equals_scalar(
        seed in 0u64..200,
        iters in 2usize..12,
        n in 1usize..8,
    ) {
        use navicim::math::rng::SampleExt;
        use navicim::nn::mc::McDropout;
        use navicim::nn::mlp::Mlp;
        let mut init_rng = Pcg32::seed_from_u64(seed);
        let mut net = Mlp::builder(3)
            .dense(8)
            .relu()
            .dropout(0.5)
            .dense(2)
            .build(&mut init_rng)
            .expect("net builds");
        let mc = McDropout::new(iters).expect("valid iterations");
        let mut batch = PointBatch::new(3);
        let mut qrng = Pcg32::seed_from_u64(seed ^ 0xbeef);
        for _ in 0..n {
            batch.push(&[
                qrng.sample_uniform(-1.0, 1.0),
                qrng.sample_uniform(-1.0, 1.0),
                qrng.sample_uniform(-1.0, 1.0),
            ]);
        }
        let mut rng_scalar = Pcg32::seed_from_u64(seed ^ 0xf00d);
        let scalar: Vec<_> = batch
            .iter()
            .map(|x| mc.predict(&mut net, x, &mut rng_scalar))
            .collect();
        let mut rng_batch = Pcg32::seed_from_u64(seed ^ 0xf00d);
        let batched = mc.predict_batch(&net, &batch, &mut rng_batch);
        prop_assert_eq!(scalar, batched);
        prop_assert_eq!(rng_scalar, rng_batch);
    }

    /// The hysteresis gate switches at most once per dwell window for
    /// arbitrary spread signals: consecutive switch frames are at least
    /// `dwell` apart, selections stay within the two slots, and the
    /// gate's own switch counter agrees with the observed transitions.
    #[test]
    fn hysteresis_gate_respects_dwell(
        seed in 0u64..10_000,
        dwell in 1usize..6,
        frames in 8usize..64,
    ) {
        let mut rng = Pcg32::seed_from_u64(seed ^ 0x6a7e);
        use navicim::math::rng::SampleExt;
        let mut gate = HysteresisGate::new(HysteresisConfig {
            analog_enter: 0.08,
            digital_enter: 0.16,
            dwell,
            start: DIGITAL_SLOT,
        })
        .expect("valid gate");
        let mut current = DIGITAL_SLOT;
        let mut last_switch: Option<usize> = None;
        let mut observed = 0u64;
        for frame in 0..frames {
            let spread = rng.sample_uniform(0.0, 0.3);
            let next = gate.select(&GateContext {
                frame,
                signals: UncertaintySignals::from_spread(spread),
                current,
                num_backends: 2,
            });
            prop_assert!(next == DIGITAL_SLOT || next == ANALOG_SLOT);
            if next != current {
                observed += 1;
                if let Some(prev) = last_switch {
                    prop_assert!(
                        frame - prev >= dwell,
                        "switched at {} and {} with dwell {}",
                        prev,
                        frame,
                        dwell
                    );
                }
                last_switch = Some(frame);
            }
            current = next;
        }
        prop_assert_eq!(observed, gate.switches());
    }

    /// Adaptive-MC depth selection stays within `[min, max]`, starts at
    /// the maximum, respects the dwell lock between depth changes, and is
    /// a deterministic function of the variance sequence (two policies
    /// fed the same stream agree decision for decision).
    #[test]
    fn adaptive_mc_depth_bounded_dwelled_and_deterministic(
        seed in 0u64..10_000,
        min_it in 2usize..12,
        extra in 0usize..24,
        dwell in 1usize..5,
        frames in 4usize..64,
    ) {
        let mut rng = Pcg32::seed_from_u64(seed ^ 0xadaf);
        use navicim::math::rng::SampleExt;
        let max_it = min_it + extra;
        let config = AdaptiveMcConfig {
            min_iterations: min_it,
            max_iterations: max_it,
            var_low: 0.05,
            var_high: 0.15,
            dwell,
        };
        let mut a = AdaptiveMcPolicy::new(config).expect("valid policy");
        let mut b = AdaptiveMcPolicy::new(config).expect("valid policy");
        let mut last_change: Option<usize> = None;
        let mut prev_depth = None;
        let mut observed_changes = 0u64;
        for frame in 0..frames {
            let variance = if frame == 0 {
                None
            } else {
                Some(rng.sample_uniform(0.0, 0.3))
            };
            let depth = a.next_iterations(variance);
            prop_assert_eq!(depth, b.next_iterations(variance));
            prop_assert!((min_it..=max_it).contains(&depth), "depth {} out of bounds", depth);
            if frame == 0 {
                prop_assert_eq!(depth, max_it);
            }
            if let Some(prev) = prev_depth {
                if depth != prev {
                    observed_changes += 1;
                    if let Some(l) = last_change {
                        prop_assert!(
                            frame - l >= dwell,
                            "depth changed at {} and {} under dwell {}",
                            l, frame, dwell
                        );
                    }
                    last_change = Some(frame);
                }
            }
            prev_depth = Some(depth);
        }
        prop_assert_eq!(observed_changes, a.changes());
    }

    /// The periodic-refresh gate is a pure schedule: slot choice depends
    /// only on the frame index (never on the uncertainty bus), digital
    /// runs are exactly `refresh_len` long and analog runs exactly
    /// `period` long.
    #[test]
    fn periodic_refresh_schedule_invariants(
        seed in 0u64..10_000,
        period in 1usize..9,
        refresh_len in 1usize..4,
        frames in 4usize..80,
    ) {
        let mut rng = Pcg32::seed_from_u64(seed ^ 0x9e81);
        use navicim::math::rng::SampleExt;
        let mut gate = PeriodicRefresh::new(PeriodicRefreshConfig { period, refresh_len })
            .expect("valid schedule");
        let cycle = period + refresh_len;
        for frame in 0..frames {
            // Arbitrary bus contents must not influence the schedule.
            let spread = rng.sample_uniform(0.0, 10.0);
            let slot = gate.select(&GateContext {
                frame,
                signals: UncertaintySignals::from_spread(spread),
                current: frame % 2,
                num_backends: 2,
            });
            let expected = if frame % cycle < refresh_len {
                DIGITAL_SLOT
            } else {
                ANALOG_SLOT
            };
            prop_assert_eq!(slot, expected);
        }
    }

    /// Variable-depth VO prediction at the configured depth is the fixed
    /// path: `predict_n_into(t = mc_iterations)` must be bit-identical to
    /// `predict` — samples, moments, macro counters and mask-RNG stream —
    /// for arbitrary depths and repeated pool reuse across shrink/grow
    /// cycles.
    #[test]
    fn vo_variable_depth_matches_fixed_at_config_depth(
        seed in 0u64..300,
        iters in 2usize..16,
    ) {
        use navicim::nn::mc::McPrediction;
        let mut rng = Pcg32::seed_from_u64(seed ^ 0x7a11);
        use navicim::math::rng::SampleExt;
        // Untrained net: bit-identity does not need a good regressor.
        let net = navicim::nn::mlp::Mlp::builder(6)
            .dense(10)
            .relu()
            .dropout(0.5)
            .dense(6)
            .build(&mut rng)
            .expect("net builds");
        let calib: Vec<Vec<f64>> = (0..3)
            .map(|_| (0..6).map(|_| rng.sample_uniform(-1.0, 1.0)).collect())
            .collect();
        let config = VoPipelineConfig {
            mc_iterations: iters,
            seed,
            ..VoPipelineConfig::default()
        };
        let mut fixed = BayesianVo::build(&net, &calib, config.clone()).expect("builds");
        let mut variable = BayesianVo::build(&net, &calib, config).expect("builds");
        let mut pooled = McPrediction::default();
        for k in 0..4u64 {
            let features: Vec<f64> = (0..6)
                .map(|i| ((seed + k) as f64 * 0.01 + i as f64 * 0.1).sin())
                .collect();
            let owned = fixed.predict(&features);
            variable.predict_n_into(&features, iters, &mut pooled);
            prop_assert_eq!(&owned, &pooled);
        }
        prop_assert_eq!(fixed.macro_stats(), variable.macro_stats());
    }

    /// The closed-loop noise inflation is total and bounded: for ANY
    /// variance input — absent, negative, huge, `NaN`, `±inf` — the
    /// returned motion-noise scale is finite and inside the configured
    /// `[floor, ceiling]`, so one degenerate VO frame can never collapse
    /// or explode the filter's proposal.
    #[test]
    fn noise_inflation_scale_always_bounded(
        gain in 0.0f64..1e9,
        floor in 0.01f64..10.0,
        extra in 0.0f64..10.0,
        variance_case in 0usize..7,
        variance in -1e12f64..1e12,
    ) {
        let ceiling = floor + extra;
        let inflation = NoiseInflation::new(gain, floor, ceiling).expect("valid bounds");
        let input = match variance_case {
            0 => None,
            1 => Some(f64::NAN),
            2 => Some(f64::INFINITY),
            3 => Some(f64::NEG_INFINITY),
            4 => Some(f64::MAX),
            5 => Some(-variance.abs()),
            _ => Some(variance),
        };
        let scale = inflation.scale(input);
        prop_assert!(scale.is_finite(), "scale {scale} for {input:?}");
        prop_assert!(
            (floor..=ceiling).contains(&scale),
            "scale {scale} outside [{floor}, {ceiling}] for {input:?}"
        );
        // Absent and non-finite variances price at the ceiling.
        if matches!(variance_case, 0..=3) {
            prop_assert_eq!(scale, ceiling);
        }
    }

    /// With a neutral bus (healthy ESS, no innovation reading) the
    /// multi-signal gate is decision-for-decision the spread-only
    /// hysteresis gate on ANY spread sequence; with arbitrary bus
    /// contents it stays within the two slots and never switches more
    /// than once per dwell window.
    #[test]
    fn multi_signal_gate_neutral_equivalence_and_dwell(
        seed in 0u64..10_000,
        dwell in 1usize..6,
        frames in 8usize..64,
    ) {
        let mut rng = Pcg32::seed_from_u64(seed ^ 0x3517);
        use navicim::math::rng::SampleExt;
        let spread_cfg = HysteresisConfig {
            analog_enter: 0.08,
            digital_enter: 0.16,
            dwell,
            start: DIGITAL_SLOT,
        };
        let ms_cfg = MultiSignalConfig {
            spread: spread_cfg,
            innovation_wake: -1.0,
            ess_wake: 0.1,
        };
        // Pass 1: neutral bus — exact hysteresis equivalence.
        let mut plain = HysteresisGate::new(spread_cfg).expect("valid gate");
        let mut multi = MultiSignalGate::new(ms_cfg).expect("valid gate");
        let spreads: Vec<f64> = (0..frames).map(|_| rng.sample_uniform(0.0, 0.3)).collect();
        let mut cur = DIGITAL_SLOT;
        for (frame, &s) in spreads.iter().enumerate() {
            let ctx = GateContext {
                frame,
                signals: UncertaintySignals::from_spread(s),
                current: cur,
                num_backends: 2,
            };
            let a = plain.select(&ctx);
            let b = multi.select(&ctx);
            prop_assert_eq!(a, b);
            cur = a;
        }
        prop_assert_eq!(plain.switches(), multi.switches());
        prop_assert_eq!(multi.rescues(), 0);
        // Pass 2: adversarial bus — slots stay valid, dwell holds.
        let mut gate = MultiSignalGate::new(ms_cfg).expect("valid gate");
        let mut cur = DIGITAL_SLOT;
        let mut last_switch: Option<usize> = None;
        for frame in 0..frames {
            let innovation = if rng.sample_bool(0.3) {
                None
            } else {
                Some(rng.sample_uniform(-5.0, 5.0))
            };
            let ctx = GateContext {
                frame,
                signals: UncertaintySignals {
                    spread: rng.sample_uniform(0.0, 0.3),
                    ess_fraction: rng.sample_uniform(0.001, 1.0),
                    innovation,
                    vo_variance: None,
                },
                current: cur,
                num_backends: 2,
            };
            let next = gate.select(&ctx);
            prop_assert!(next == DIGITAL_SLOT || next == ANALOG_SLOT);
            if next != cur {
                if let Some(prev) = last_switch {
                    prop_assert!(
                        frame - prev >= dwell,
                        "switched at {} and {} under dwell {}",
                        prev,
                        frame,
                        dwell
                    );
                }
                last_switch = Some(frame);
            }
            cur = next;
        }
    }

    /// SIMD remainder handling and lane-position independence: batch
    /// lengths covering every remainder shape the 4-wide kernels see
    /// (n = 1, 3, 4g+1, 4g+3 — full lane groups plus a 1- or 3-point
    /// scalar tail), with one query optionally poisoned by a `NaN` or
    /// `-inf` coordinate at an arbitrary position, evaluate
    /// bit-identically between the batched path (SIMD body + scalar
    /// tail) and sequential scalar calls on both digital kernels. The
    /// bit-pattern comparison makes `NaN` lanes count as equal, so a
    /// non-finite query must produce the exact same bits no matter
    /// which lane — or the tail — served it.
    #[test]
    fn simd_remainder_and_nonfinite_lane_parity(
        seed in 0u64..400,
        k in 1usize..8,
        groups in 0usize..8,
        odd_tail in 0usize..2,
        special_pos in 0usize..64,
        special_axis in 0usize..3,
        special_kind in 0usize..3,
    ) {
        let mut rng = Pcg32::seed_from_u64(seed ^ 0x51d0);
        use navicim::math::rng::SampleExt;
        let dim = 3;
        let n = 4 * groups + if odd_tail == 1 { 3 } else { 1 };
        let mut weights: Vec<f64> = (0..k).map(|_| rng.sample_uniform(0.1, 1.0)).collect();
        let total: f64 = weights.iter().sum();
        weights.iter_mut().for_each(|w| *w /= total);
        let means: Vec<Vec<f64>> = (0..k)
            .map(|_| (0..dim).map(|_| rng.sample_uniform(-3.0, 3.0)).collect())
            .collect();
        let vars: Vec<Vec<f64>> = (0..k)
            .map(|_| (0..dim).map(|_| rng.sample_uniform(0.05, 2.0)).collect())
            .collect();
        let mut gmm = Gmm::new(weights.clone(), means.clone(), Covariance::Diagonal(vars))
            .expect("valid gmm");
        let kernels: Vec<HmgKernel> = (0..k)
            .map(|ki| {
                HmgKernel::new(
                    means[ki].clone(),
                    (0..dim).map(|_| rng.sample_uniform(0.1, 1.5)).collect(),
                    rng.sample_uniform(0.5, 2.0),
                )
                .expect("valid kernel")
            })
            .collect();
        let mut model = HmgmModel::new(weights, kernels).expect("valid model");
        let mut points: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.sample_uniform(-4.0, 4.0)).collect())
            .collect();
        match special_kind {
            1 => points[special_pos % n][special_axis] = f64::NAN,
            2 => points[special_pos % n][special_axis] = f64::NEG_INFINITY,
            _ => {}
        }
        let mut batch = PointBatch::new(dim);
        for p in &points {
            batch.push(p);
        }
        let gmm_scalar: Vec<u64> =
            batch.iter().map(|p| gmm.log_pdf(p).to_bits()).collect();
        let gmm_batched: Vec<u64> = gmm
            .log_likelihood_batch(&batch)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        prop_assert_eq!(gmm_scalar, gmm_batched);
        let hmgm_scalar: Vec<u64> =
            batch.iter().map(|p| model.log_likelihood(p).to_bits()).collect();
        let hmgm_batched: Vec<u64> =
            LikelihoodBackend::log_likelihood_batch(&mut model, &batch)
                .iter()
                .map(|v| v.to_bits())
                .collect();
        prop_assert_eq!(hmgm_scalar, hmgm_batched);
    }

    /// `exp_fast` honours its documented accuracy contract on random
    /// inputs across the whole finite-result range: within
    /// `EXP_FAST_MAX_ULP` of the correctly rounded `f64::exp` wherever
    /// the true result is a normal number.
    #[test]
    fn exp_fast_ulp_gate_randomized(x in -745.0f64..709.7) {
        use navicim::math::simd::{exp_fast, ulp_distance, EXP_FAST_MAX_ULP};
        let reference = x.exp();
        if reference.is_normal() {
            let d = ulp_distance(exp_fast(x), reference);
            prop_assert!(
                d <= EXP_FAST_MAX_ULP,
                "exp_fast({x}) is {d} ulp from f64::exp"
            );
        }
    }

    /// The CIM engine's DAC-code lookup table is a pure acceleration:
    /// for arbitrary batch sizes (covering all lane-group remainders)
    /// the LUT engine and a direct-evaluation engine built from the
    /// same config produce bit-identical outputs and EngineStats.
    #[test]
    fn cim_lut_matches_direct_eval(seed in 0u64..100, n in 1usize..48) {
        let mut rng = Pcg32::seed_from_u64(seed ^ 0x1111);
        use navicim::math::rng::SampleExt;
        let pts = vec![vec![-1.0, -1.0, -1.0], vec![1.0, 1.0, 1.0]];
        let space = SpaceMap::fit_to_points(&pts, 0.15, 0.85, 0.2).expect("map fits");
        let tech = TechParams::cmos_45nm();
        let (floor, ceil) = HmgmCimEngine::recommended_sigma_bounds(&tech, &space);
        let sigma = (floor * 2.0).min(ceil);
        let model = HmgmModel::new(
            vec![1.0, 0.5],
            vec![
                HmgKernel::new(vec![-0.5, 0.0, 0.2], vec![sigma; 3], 1.0).expect("kernel"),
                HmgKernel::new(vec![0.6, 0.3, -0.4], vec![sigma; 3], 1.0).expect("kernel"),
            ],
        )
        .expect("model");
        let config = CimEngineConfig { seed, ..CimEngineConfig::default() };
        let mut fast =
            HmgmCimEngine::build(&model, space.clone(), config).expect("engine builds");
        let mut direct = HmgmCimEngine::build(&model, space, config)
            .expect("engine builds")
            .with_direct_eval();
        let mut batch = PointBatch::new(3);
        for _ in 0..n {
            batch.push(&[
                rng.sample_uniform(-1.0, 1.0),
                rng.sample_uniform(-1.0, 1.0),
                rng.sample_uniform(-1.0, 1.0),
            ]);
        }
        let a = LikelihoodBackend::log_likelihood_batch(&mut fast, &batch);
        let b = LikelihoodBackend::log_likelihood_batch(&mut direct, &batch);
        prop_assert_eq!(a, b);
        prop_assert_eq!(fast.stats(), direct.stats());
    }

    /// Weight quantization reconstruction error is bounded by the step.
    #[test]
    fn quant_matrix_reconstruction(
        seed in 0u64..500,
        rows in 1usize..6,
        cols in 1usize..6,
        bits in 3u32..10,
    ) {
        let mut rng = Pcg32::seed_from_u64(seed);
        use navicim::math::rng::SampleExt;
        let w: Vec<f64> = (0..rows * cols).map(|_| rng.sample_uniform(-2.0, 2.0)).collect();
        let m = QuantMatrix::from_weights(&w, rows, cols, bits).expect("quantizes");
        for (code, &orig) in m.codes().iter().zip(&w) {
            prop_assert!((*code as f64 * m.step() - orig).abs() <= m.step() * 0.5 + 1e-12);
        }
    }
}

// Full gated localization runs are expensive, so this block draws fewer
// cases than the kernel-level properties above.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Uncertainty-gated runs are deterministic: for a fixed seed, two
    /// independently built pipelines produce bit-identical PipelineRuns —
    /// same gate decisions, same estimates/errors, same per-frame energy
    /// and backend stats — even though the analog slot consumes noise
    /// only on the frames the gate hands it.
    #[test]
    fn gated_runs_bit_identical_across_repeats(seed in 0u64..1_000) {
        use navicim::scene::dataset::{LocalizationConfig, LocalizationDataset};
        let dataset = LocalizationDataset::generate(
            &LocalizationConfig {
                image_width: 24,
                image_height: 18,
                map_points: 600,
                frames: 8,
                ..LocalizationConfig::default()
            },
            7,
        )
        .expect("dataset generates");
        let config = || LocalizerConfig {
            num_particles: 150,
            pixel_stride: 7,
            components: 8,
            gate: GateConfig::gated(DIGITAL_GMM, CIM_HMGM).with_hysteresis(HysteresisConfig {
                analog_enter: 0.08,
                digital_enter: 0.15,
                dwell: 2,
                start: DIGITAL_SLOT,
            }),
            seed,
            ..LocalizerConfig::default()
        };
        let run1 = LocalizationPipeline::build(&dataset, config())
            .expect("pipeline builds")
            .run(&dataset)
            .expect("run completes");
        let run2 = LocalizationPipeline::build(&dataset, config())
            .expect("pipeline builds")
            .run(&dataset)
            .expect("run completes");
        prop_assert_eq!(&run1, &run2);
        // The per-frame stream is internally consistent.
        prop_assert_eq!(run1.frames.len(), 7);
        prop_assert_eq!(
            run1.total_evaluations(),
            run1.merged_stats().evaluations
        );
    }

    /// Attaching a VO stage never perturbs the fixed-config map path: the
    /// gated localization stream (slots, estimates, errors, map energy,
    /// backend stats) is bit-identical with and without the stage, and
    /// the adaptive-MC depths it logs stay within their configured
    /// bounds and repeat deterministically.
    #[test]
    fn vo_stage_is_a_pure_observer_of_the_map_path(seed in 0u64..1_000) {
        use navicim::scene::dataset::{make_samples, LocalizationConfig, LocalizationDataset};
        let dataset = LocalizationDataset::generate(
            &LocalizationConfig {
                image_width: 24,
                image_height: 18,
                map_points: 600,
                frames: 8,
                ..LocalizationConfig::default()
            },
            11,
        )
        .expect("dataset generates");
        let config = || LocalizerConfig {
            num_particles: 150,
            pixel_stride: 7,
            components: 8,
            gate: GateConfig::gated(DIGITAL_GMM, CIM_HMGM),
            seed,
            ..LocalizerConfig::default()
        };
        let stage = || {
            let mut rng = Pcg32::seed_from_u64(seed ^ 0x0b5e);
            let net = navicim::nn::mlp::Mlp::builder(36)
                .dense(12)
                .relu()
                .dropout(0.5)
                .dense(6)
                .build(&mut rng)
                .expect("net builds");
            let samples = make_samples(&dataset.frames, &dataset.camera, 4, 3);
            let calib: Vec<Vec<f64>> =
                samples.iter().take(3).map(|s| s.features.clone()).collect();
            let vo = BayesianVo::build(
                &net,
                &calib,
                VoPipelineConfig {
                    mc_iterations: 10,
                    seed,
                    ..VoPipelineConfig::default()
                },
            )
            .expect("vo builds");
            VoStage::new(
                vo,
                AdaptiveMcPolicy::new(AdaptiveMcConfig {
                    min_iterations: 4,
                    max_iterations: 10,
                    var_low: 1e-6,
                    var_high: 1e6,
                    dwell: 1,
                })
                .expect("policy builds"),
                &dataset.camera,
                &dataset.frames[0].depth,
                4,
                3,
            )
            .expect("stage builds")
        };
        let bare = LocalizationPipeline::build(&dataset, config())
            .expect("pipeline builds")
            .run(&dataset)
            .expect("run completes");
        let observed = LocalizationPipeline::build(&dataset, config())
            .expect("pipeline builds")
            .with_vo(stage())
            .run(&dataset)
            .expect("run completes");
        prop_assert_eq!(&observed.stats, &bare.stats);
        for (with_vo, without) in observed.frames.iter().zip(&bare.frames) {
            prop_assert_eq!(with_vo.slot, without.slot);
            prop_assert_eq!(&with_vo.summary, &without.summary);
            prop_assert_eq!(with_vo.map_energy_pj, without.map_energy_pj);
            prop_assert_eq!(with_vo.signals.spread, without.signals.spread);
            prop_assert_eq!(with_vo.signals.innovation, without.signals.innovation);
            let vo = with_vo.vo.expect("stage attached");
            prop_assert!((4..=10).contains(&vo.iterations));
        }
        // And the observed run itself repeats bit-identically.
        let repeat = LocalizationPipeline::build(&dataset, config())
            .expect("pipeline builds")
            .with_vo(stage())
            .run(&dataset)
            .expect("run completes");
        prop_assert_eq!(&observed, &repeat);
    }

    /// Closing the VO→filter loop is safe and reproducible:
    /// (a) ground-truth mode stays bit-identical to the bare pipeline
    ///     on the whole map side even with a VO stage attached, an
    ///     explicit `ControlSource::GroundTruth` and a custom inflation
    ///     config (the pre-closed-loop behavior survives untouched),
    /// (b) closed-loop runs repeat bit-identically for a fixed seed,
    /// (c) every closed-loop frame's applied noise scale equals the
    ///     bounded inflation of that frame's fresh VO variance.
    #[test]
    fn closed_loop_deterministic_and_gt_mode_bit_identical(seed in 0u64..1_000) {
        use navicim::scene::dataset::{make_samples, LocalizationConfig, LocalizationDataset};
        let dataset = LocalizationDataset::generate(
            &LocalizationConfig {
                image_width: 24,
                image_height: 18,
                map_points: 600,
                frames: 8,
                ..LocalizationConfig::default()
            },
            13,
        )
        .expect("dataset generates");
        let config = || LocalizerConfig {
            num_particles: 150,
            pixel_stride: 7,
            components: 8,
            gate: GateConfig::gated(DIGITAL_GMM, CIM_HMGM),
            seed,
            ..LocalizerConfig::default()
        };
        let stage = || {
            let mut rng = Pcg32::seed_from_u64(seed ^ 0xc105);
            let net = navicim::nn::mlp::Mlp::builder(36)
                .dense(12)
                .relu()
                .dropout(0.5)
                .dense(6)
                .build(&mut rng)
                .expect("net builds");
            let samples = make_samples(&dataset.frames, &dataset.camera, 4, 3);
            let calib: Vec<Vec<f64>> =
                samples.iter().take(3).map(|s| s.features.clone()).collect();
            let vo = BayesianVo::build(
                &net,
                &calib,
                VoPipelineConfig {
                    mc_iterations: 6,
                    seed,
                    ..VoPipelineConfig::default()
                },
            )
            .expect("vo builds");
            VoStage::new(
                vo,
                AdaptiveMcPolicy::fixed(6).expect("policy builds"),
                &dataset.camera,
                &dataset.frames[0].depth,
                4,
                3,
            )
            .expect("stage builds")
        };
        let inflation = NoiseInflation::new(1e6, 0.5, 3.0).expect("valid bounds");
        // (a) explicit ground-truth control + inflation config changes
        // nothing on the map side.
        let bare = LocalizationPipeline::build(&dataset, config())
            .expect("pipeline builds")
            .run(&dataset)
            .expect("run completes");
        let gt_mode = LocalizationPipeline::build(&dataset, config())
            .expect("pipeline builds")
            .with_vo(stage())
            .with_control(ControlSource::GroundTruth)
            .with_noise_inflation(inflation)
            .expect("valid inflation")
            .run(&dataset)
            .expect("run completes");
        prop_assert_eq!(&gt_mode.stats, &bare.stats);
        for (gt, plain) in gt_mode.frames.iter().zip(&bare.frames) {
            prop_assert_eq!(gt.slot, plain.slot);
            prop_assert_eq!(&gt.summary, &plain.summary);
            prop_assert_eq!(gt.map_energy_pj, plain.map_energy_pj);
            prop_assert_eq!(gt.signals.spread, plain.signals.spread);
            prop_assert_eq!(gt.control_source, ControlSource::GroundTruth);
            prop_assert_eq!(gt.noise_scale, 1.0);
        }
        // (b) + (c): the closed loop repeats bit-identically and applies
        // the bounded per-frame scale.
        let closed = || {
            LocalizationPipeline::build(&dataset, config())
                .expect("pipeline builds")
                .with_vo(stage())
                .with_control(ControlSource::VisualOdometry)
                .with_noise_inflation(inflation)
                .expect("valid inflation")
                .run(&dataset)
                .expect("closed-loop run completes")
        };
        let run1 = closed();
        let run2 = closed();
        prop_assert_eq!(&run1, &run2);
        for f in &run1.frames {
            prop_assert_eq!(f.control_source, ControlSource::VisualOdometry);
            let vo = f.vo.expect("stage attached");
            prop_assert_eq!(f.noise_scale, inflation.scale(Some(vo.variance)));
            prop_assert!((0.5..=3.0).contains(&f.noise_scale));
            prop_assert!(f.summary.error.is_finite());
        }
    }
}
