//! Workspace-level property-based tests on the core invariants that the
//! paper's co-design relies on.

use navicim::device::inverter::GaussianLikeCell;
use navicim::device::params::TechParams;
use navicim::gmm::hmg::HmgKernel;
use navicim::math::geom::{Pose, Quat, Vec3};
use navicim::math::quant::Quantizer;
use navicim::math::rng::Pcg32;
use navicim::math::sample::{effective_sample_size, ResampleScheme};
use navicim::nn::quant::QuantMatrix;
use navicim::sram::cim_macro::{MacroConfig, SramCimMacro};
use navicim::sram::reuse::{greedy_order, hamming, path_cost};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The inverter bell peaks at its programmed centre for any on-rail
    /// centre and realizable width.
    #[test]
    fn inverter_peak_at_center(
        center in 0.2f64..0.8,
        overlap in 0.1f64..0.6,
        offset in 0.05f64..0.2,
    ) {
        let tech = TechParams::cmos_45nm();
        let cell = GaussianLikeCell::with_center_width(&tech, center, overlap)
            .expect("valid overlap");
        let peak = cell.current(center);
        prop_assert!(peak > cell.current(center - offset));
        prop_assert!(peak > cell.current(center + offset));
    }

    /// HMG kernels never exceed their amplitude and are maximal at the
    /// mean.
    #[test]
    fn hmg_bounded_by_amplitude(
        mx in -2.0f64..2.0,
        my in -2.0f64..2.0,
        sx in 0.05f64..1.0,
        sy in 0.05f64..1.0,
        amp in 0.1f64..10.0,
        qx in -3.0f64..3.0,
        qy in -3.0f64..3.0,
    ) {
        let k = HmgKernel::new(vec![mx, my], vec![sx, sy], amp).expect("valid kernel");
        let v = k.eval(&[qx, qy]);
        prop_assert!(v > 0.0);
        prop_assert!(v <= amp * (1.0 + 1e-12));
        prop_assert!(k.eval(&[mx, my]) >= v);
        // Harmonic mean dominates the product everywhere.
        prop_assert!(v >= k.eval_product(&[qx, qy]) - 1e-15);
    }

    /// Pose composition with the inverse is the identity for arbitrary
    /// poses.
    #[test]
    fn pose_inverse_roundtrip(
        x in -10.0f64..10.0,
        y in -10.0f64..10.0,
        z in -10.0f64..10.0,
        roll in -3.0f64..3.0,
        pitch in -1.4f64..1.4,
        yaw in -3.0f64..3.0,
    ) {
        let pose = Pose::from_position_euler(Vec3::new(x, y, z), roll, pitch, yaw);
        let ident = pose.compose(pose.inverse());
        prop_assert!(ident.translation.norm() < 1e-9);
        prop_assert!(ident.rotation.angle_to(Quat::IDENTITY) < 1e-9);
    }

    /// Quantize/dequantize stays within half a step inside the range.
    #[test]
    fn quantizer_error_bound(
        bits in 2u32..12,
        range in 0.1f64..100.0,
        frac in -1.0f64..1.0,
    ) {
        let q = Quantizer::new(bits, range).expect("valid quantizer");
        let x = frac * range;
        prop_assert!((x - q.fake_quantize(x)).abs() <= q.max_round_error() + 1e-12);
    }

    /// Resampling preserves particle count and only selects valid indices,
    /// and ESS never exceeds the population size.
    #[test]
    fn resampling_invariants(
        seed in 0u64..1000,
        n in 2usize..100,
        scheme_idx in 0usize..4,
    ) {
        let mut rng = Pcg32::seed_from_u64(seed);
        use navicim::math::rng::{Rng64, SampleExt};
        let weights: Vec<f64> = (0..n).map(|_| rng.next_f64() + 1e-9).collect();
        prop_assert!(effective_sample_size(&weights) <= n as f64 + 1e-9);
        let scheme = ResampleScheme::ALL[scheme_idx];
        let idx = scheme.resample(&weights, &mut rng);
        prop_assert_eq!(idx.len(), n);
        prop_assert!(idx.iter().all(|&i| i < n));
        let _ = rng.sample_index(n);
    }

    /// The macro's compute reuse is exact for arbitrary code sequences.
    #[test]
    fn macro_reuse_exactness(
        seed in 0u64..500,
        rows in 1usize..8,
        cols in 1usize..8,
        steps in 1usize..6,
    ) {
        let mut rng = Pcg32::seed_from_u64(seed);
        use navicim::math::rng::SampleExt;
        let codes: Vec<i64> = (0..rows * cols)
            .map(|_| rng.sample_index(15) as i64 - 7)
            .collect();
        let config = MacroConfig { adc_bits: 0, reuse: true, ..MacroConfig::default() };
        let mut with = SramCimMacro::new(config);
        with.program_layer(0, &codes, rows, cols).expect("programs");
        let mut without = SramCimMacro::new(MacroConfig {
            adc_bits: 0,
            reuse: false,
            ..MacroConfig::default()
        });
        without.program_layer(0, &codes, rows, cols).expect("programs");
        let mask = vec![true; rows];
        for _ in 0..steps {
            let input: Vec<i64> = (0..cols)
                .map(|_| rng.sample_index(15) as i64 - 7)
                .collect();
            let a = with.matvec(0, &input, &mask).expect("matvec");
            let b = without.matvec(0, &input, &mask).expect("matvec");
            prop_assert_eq!(a, b);
        }
        prop_assert!(with.stats().macs_executed <= without.stats().macs_executed);
    }

    /// Greedy mask ordering is a permutation and never costs more than
    /// twice the identity order's switching (sanity bound; in practice it
    /// is below it).
    #[test]
    fn ordering_invariants(seed in 0u64..500, t in 2usize..20, len in 4usize..64) {
        let mut rng = Pcg32::seed_from_u64(seed);
        use navicim::math::rng::SampleExt;
        let masks: Vec<Vec<bool>> = (0..t)
            .map(|_| (0..len).map(|_| rng.sample_bool(0.5)).collect())
            .collect();
        let order = greedy_order(&masks).expect("orders");
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..t).collect::<Vec<_>>());
        let identity: Vec<usize> = (0..t).collect();
        prop_assert!(path_cost(&masks, &order) <= 2 * path_cost(&masks, &identity).max(1));
        prop_assert!(hamming(&masks[0], &masks[0]) == 0);
    }

    /// Weight quantization reconstruction error is bounded by the step.
    #[test]
    fn quant_matrix_reconstruction(
        seed in 0u64..500,
        rows in 1usize..6,
        cols in 1usize..6,
        bits in 3u32..10,
    ) {
        let mut rng = Pcg32::seed_from_u64(seed);
        use navicim::math::rng::SampleExt;
        let w: Vec<f64> = (0..rows * cols).map(|_| rng.sample_uniform(-2.0, 2.0)).collect();
        let m = QuantMatrix::from_weights(&w, rows, cols, bits).expect("quantizes");
        for (code, &orig) in m.codes().iter().zip(&w) {
            prop_assert!((*code as f64 * m.step() - orig).abs() <= m.step() * 0.5 + 1e-12);
        }
    }
}
