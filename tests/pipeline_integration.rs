//! Cross-crate integration tests: the two paper pipelines exercised
//! through the public umbrella API, plus exactness and determinism
//! guarantees that span crate boundaries.

use navicim::analog::engine::CimEngineConfig;
use navicim::core::localization::{CimLocalizer, LocalizerConfig, WeightPath};
use navicim::core::pipeline::{
    GateConfig, GateKind, HysteresisConfig, LocalizationPipeline, ANALOG_SLOT, DIGITAL_SLOT,
};
use navicim::core::registry::{CIM_HMGM, DIGITAL_GMM};
use navicim::core::uncertainty::calibration_summary;
use navicim::core::vo::{
    train_vo_network, BayesianVo, CimQuantBackend, VoPipelineConfig, VoTrainConfig,
};
use navicim::math::rng::Pcg32;
use navicim::nn::quant::{ExactBackend, QuantizedMlp};
use navicim::scene::dataset::{
    LocalizationConfig, LocalizationDataset, VoConfig, VoDataset, VoTrajectory,
};
use navicim::scene::noise::DepthNoise;
use navicim::sram::cim_macro::{MacroConfig, SramCimMacro};

fn loc_dataset(seed: u64) -> LocalizationDataset {
    // Enough map points/frames that the constrained HMGM fit is stable
    // across seeds (600-point clouds give high seed-to-seed variance).
    LocalizationDataset::generate(
        &LocalizationConfig {
            image_width: 32,
            image_height: 24,
            map_points: 1200,
            frames: 12,
            ..LocalizationConfig::default()
        },
        seed,
    )
    .expect("dataset generates")
}

fn vo_dataset(seed: u64) -> VoDataset {
    VoDataset::generate(
        &VoConfig {
            image_width: 24,
            image_height: 18,
            grid_width: 4,
            grid_height: 3,
            frames: 24,
            trajectory: VoTrajectory::Waypoints(4),
            noise: DepthNoise::none(),
            ..VoConfig::default()
        },
        seed,
    )
    .expect("dataset generates")
}

fn small_train() -> VoTrainConfig {
    VoTrainConfig {
        hidden1: 24,
        hidden2: 12,
        epochs: 50,
        ..VoTrainConfig::default()
    }
}

#[test]
fn localization_pipeline_both_backends_converge() {
    let dataset = loc_dataset(101);
    let config = |backend: &str| LocalizerConfig {
        num_particles: 300,
        components: 12,
        pixel_stride: 9,
        backend: backend.into(),
        seed: 5,
        ..LocalizerConfig::default()
    };
    let digital = CimLocalizer::build(&dataset, config(DIGITAL_GMM))
        .expect("digital builds")
        .run(&dataset)
        .expect("digital runs");
    let cim = CimLocalizer::build(&dataset, config(CIM_HMGM))
        .expect("cim builds")
        .run(&dataset)
        .expect("cim runs");
    assert!(
        digital.steady_state_error() < 0.25,
        "digital {:?}",
        digital.errors
    );
    assert!(cim.steady_state_error() < 0.35, "cim {:?}", cim.errors);
    // Both backends evaluated the same measurement workload.
    assert_eq!(digital.point_evaluations, cim.point_evaluations);
}

#[test]
fn batched_weight_step_runs_both_backends_end_to_end() {
    // The refactored per-frame batch weight step (the default) must drive
    // the full localization pipeline on both backends and agree
    // bit-for-bit with the legacy scalar path.
    let dataset = loc_dataset(108);
    let config = |backend: &str, path| LocalizerConfig {
        num_particles: 300,
        components: 12,
        pixel_stride: 9,
        backend: backend.into(),
        weight_path: path,
        seed: 5,
        ..LocalizerConfig::default()
    };
    assert_eq!(LocalizerConfig::default().weight_path, WeightPath::Batched);
    for backend in [DIGITAL_GMM, CIM_HMGM] {
        let batched = CimLocalizer::build(&dataset, config(backend, WeightPath::Batched))
            .expect("batched builds")
            .run(&dataset)
            .expect("batched runs");
        let scalar = CimLocalizer::build(&dataset, config(backend, WeightPath::Scalar))
            .expect("scalar builds")
            .run(&dataset)
            .expect("scalar runs");
        assert_eq!(batched.errors, scalar.errors, "{backend}");
        assert_eq!(batched.estimates, scalar.estimates, "{backend}");
        assert_eq!(
            batched.point_evaluations, scalar.point_evaluations,
            "{backend}"
        );
        assert!(batched.point_evaluations > 0, "{backend}");
        // And the pipeline still converges through the batch path.
        assert_eq!(batched.stats, scalar.stats, "{backend}");
        assert!(
            batched.steady_state_error() < 0.4,
            "{backend}: {:?}",
            batched.errors
        );
    }
}

#[test]
fn gated_pipeline_arbitrates_backends_and_saves_energy() {
    // The uncertainty-gated streaming API end to end: a hysteresis gate
    // over [digital, analog] slots must actually use both substrates,
    // spend less map energy than the always-digital baseline, and keep
    // tracking.
    let dataset = loc_dataset(109);
    let config = |policy: GateKind| LocalizerConfig {
        num_particles: 300,
        components: 12,
        pixel_stride: 9,
        // Low-precision converters: the analog energy advantage comes
        // from the Walden-scaled ADC term.
        cim: CimEngineConfig {
            dac_bits: 6,
            adc_bits: 6,
            ..CimEngineConfig::default()
        },
        gate: GateConfig {
            backends: vec![DIGITAL_GMM.into(), CIM_HMGM.into()],
            policy,
        },
        seed: 5,
        ..LocalizerConfig::default()
    };
    let hysteresis = GateKind::Hysteresis(HysteresisConfig {
        analog_enter: 0.07,
        digital_enter: 0.12,
        dwell: 2,
        start: DIGITAL_SLOT,
    });
    let gated = LocalizationPipeline::build(&dataset, config(hysteresis))
        .expect("gated pipeline builds")
        .run(&dataset)
        .expect("gated run completes");
    let digital = LocalizationPipeline::build(&dataset, config(GateKind::Always(DIGITAL_SLOT)))
        .expect("digital pipeline builds")
        .run(&dataset)
        .expect("digital run completes");

    // Both substrates served frames; the stream starts digital (wide
    // initial cloud) and hands converged frames to the analog array.
    assert_eq!(gated.frames[0].slot, DIGITAL_SLOT);
    assert!(gated.frames_on(ANALOG_SLOT) > 0, "{:?}", gated.frames);
    assert!(gated.frames_on(DIGITAL_SLOT) > 0);
    assert!(gated.analog_fraction() > 0.0 && gated.analog_fraction() < 1.0);
    // The mixed-substrate run is cheaper than always-digital and still
    // tracks.
    assert!(
        gated.total_energy_pj() < digital.total_energy_pj(),
        "gated {} pJ vs digital {} pJ",
        gated.total_energy_pj(),
        digital.total_energy_pj()
    );
    assert!(gated.steady_state_error() < 0.4, "{:?}", gated.frames);
    assert!(gated
        .frames
        .iter()
        .all(|f| f.summary.error.is_finite() && f.map_energy_pj > 0.0));
    // Without a VO stage the joint energy *is* the map energy and the bus
    // carries no VO variance.
    assert_eq!(gated.total_energy_pj(), gated.total_map_energy_pj());
    assert_eq!(gated.total_vo_energy_pj(), 0.0);
    assert!(gated
        .frames
        .iter()
        .all(|f| f.vo.is_none() && f.signals.vo_variance.is_none()));
    // Per-slot stats separate the substrates.
    assert!(!gated.stats[DIGITAL_SLOT].is_analog());
    assert!(gated.stats[ANALOG_SLOT].is_analog());

    // The monolithic wrapper serves gated configs too, flattening the
    // pipeline run into the legacy record.
    let legacy = CimLocalizer::build(&dataset, config(GateKind::Always(ANALOG_SLOT)))
        .expect("wrapper builds")
        .run(&dataset)
        .expect("wrapper runs");
    assert_eq!(legacy.backend, format!("{DIGITAL_GMM}+{CIM_HMGM}"));
    assert!(legacy.stats.is_analog());
}

#[test]
fn adaptive_mc_vo_stage_cuts_joint_energy_at_identical_pose_error() {
    // The two-axis co-design end to end: a hysteresis-gated map plus a
    // VO stage whose MC depth adapts to predictive variance must price a
    // *joint* energy strictly below the fixed-30-style run, while the
    // map-side stream (and hence pose error) stays bit-identical — the
    // VO stage is an observer, not an actor, on the filter.
    use navicim::core::pipeline::VoStage;
    use navicim::core::vo::{AdaptiveMcConfig, AdaptiveMcPolicy};
    use navicim::scene::dataset::make_samples;

    let dataset = loc_dataset(110);
    let (grid_w, grid_h) = (4, 3);
    let samples = make_samples(&dataset.frames, &dataset.camera, grid_w, grid_h);
    let net = train_vo_network(&samples, 3 * grid_w * grid_h, &small_train()).expect("trains");
    let calib: Vec<Vec<f64>> = samples.iter().take(6).map(|s| s.features.clone()).collect();
    let config = || LocalizerConfig {
        num_particles: 300,
        components: 12,
        pixel_stride: 9,
        gate: GateConfig::gated(DIGITAL_GMM, CIM_HMGM),
        seed: 5,
        ..LocalizerConfig::default()
    };
    let run_with = |policy: AdaptiveMcPolicy| {
        let vo = BayesianVo::build(
            &net,
            &calib,
            VoPipelineConfig {
                mc_iterations: 16,
                ..VoPipelineConfig::default()
            },
        )
        .expect("vo builds");
        let stage = VoStage::new(
            vo,
            policy,
            &dataset.camera,
            &dataset.frames[0].depth,
            grid_w,
            grid_h,
        )
        .expect("stage builds");
        LocalizationPipeline::build(&dataset, config())
            .expect("pipeline builds")
            .with_vo(stage)
            .run(&dataset)
            .expect("run completes")
    };
    let fixed = run_with(AdaptiveMcPolicy::fixed(16).expect("fixed policy"));
    // Thresholds straddling the observed variance scale, probed from the
    // fixed run's logged variances.
    let mut vars: Vec<f64> = fixed
        .frames
        .iter()
        .map(|f| f.vo.expect("stage attached").variance)
        .collect();
    vars.sort_by(|a, b| a.partial_cmp(b).expect("finite variances"));
    // Thresholds inside the observed distribution (p75 / p90, like the
    // abl_gating bin) so both hysteresis directions can fire: most
    // frames are "confident enough" to run shallow, the uncertain tail
    // climbs back toward the ceiling.
    let low = vars[(vars.len() * 3) / 4];
    let p90 = vars[(vars.len() * 9) / 10];
    let high = if p90 > low { p90 } else { low * 1.5 + 1e-12 };
    let adaptive = run_with(
        AdaptiveMcPolicy::new(AdaptiveMcConfig {
            min_iterations: 4,
            max_iterations: 16,
            var_low: low,
            var_high: high,
            dwell: 2,
        })
        .expect("adaptive policy"),
    );
    assert_eq!(fixed.vo_policy.as_deref(), Some("fixed-mc16"));
    assert_eq!(adaptive.vo_policy.as_deref(), Some("adaptive-mc[4..16]"));
    // Map side identical: same slots, same errors, same map energy.
    assert_eq!(fixed.stats, adaptive.stats);
    assert_eq!(fixed.steady_state_error(), adaptive.steady_state_error());
    assert_eq!(fixed.total_map_energy_pj(), adaptive.total_map_energy_pj());
    // VO side adapted: lower mean depth, strictly lower VO and joint
    // energy.
    assert!(
        adaptive.mean_mc_iterations() < fixed.mean_mc_iterations(),
        "adaptive {} vs fixed {}",
        adaptive.mean_mc_iterations(),
        fixed.mean_mc_iterations()
    );
    assert!(adaptive.total_vo_energy_pj() < fixed.total_vo_energy_pj());
    assert!(adaptive.total_energy_pj() < fixed.total_energy_pj());
    // Depths bounded and logged per frame.
    assert!(adaptive
        .frames
        .iter()
        .all(|f| (4..=16).contains(&f.vo.expect("vo record").iterations)));
}

#[test]
fn closed_loop_navigates_on_its_own_vo_estimates() {
    // The full sensor-fusion story end to end: a pipeline whose motion
    // model is driven by the MC-Dropout VO predictive mean (no
    // ground-truth odometry at all), with the prediction's variance
    // scaling the motion noise through the bounded inflation law, must
    // keep tracking the flight at an error comparable to the
    // ground-truth-driven run.
    use navicim::core::pipeline::{ControlSource, NoiseInflation, PipelineRun, VoStage};
    use navicim::core::vo::AdaptiveMcPolicy;
    use navicim::scene::dataset::make_samples;

    // A denser flight than `loc_dataset`: 40 frames per orbit keeps the
    // per-frame deltas (~0.28 m) small enough to sit in the VO
    // regressor's operating regime (the 12-frame datasets take ~0.9 m
    // steps no small depth-grid regressor can resolve).
    let dataset = LocalizationDataset::generate(
        &LocalizationConfig {
            image_width: 48,
            image_height: 36,
            map_points: 1500,
            frames: 40,
            ..LocalizationConfig::default()
        },
        111,
    )
    .expect("dataset generates");
    let (grid_w, grid_h) = (4, 3);
    let samples = make_samples(&dataset.frames, &dataset.camera, grid_w, grid_h);
    let net = train_vo_network(
        &samples,
        3 * grid_w * grid_h,
        &VoTrainConfig {
            hidden1: 48,
            hidden2: 24,
            epochs: 300,
            ..VoTrainConfig::default()
        },
    )
    .expect("trains");
    let calib: Vec<Vec<f64>> = samples.iter().take(6).map(|s| s.features.clone()).collect();
    // Tracking regime: a decent start prior and a dense-enough scan that
    // the comparison measures drift containment, as in `abl_gating`.
    let config = || LocalizerConfig {
        num_particles: 300,
        components: 12,
        pixel_stride: 7,
        init_spread: 0.1,
        init_yaw_spread: 0.05,
        gate: GateConfig::gated(DIGITAL_GMM, CIM_HMGM),
        seed: 5,
        ..LocalizerConfig::default()
    };
    let inflation = NoiseInflation::default();
    let run_with = |control: ControlSource| -> PipelineRun {
        let vo = BayesianVo::build(
            &net,
            &calib,
            VoPipelineConfig {
                mc_iterations: 12,
                ..VoPipelineConfig::default()
            },
        )
        .expect("vo builds");
        let stage = VoStage::new(
            vo,
            AdaptiveMcPolicy::fixed(12).expect("policy"),
            &dataset.camera,
            &dataset.frames[0].depth,
            grid_w,
            grid_h,
        )
        .expect("stage builds");
        LocalizationPipeline::build(&dataset, config())
            .expect("pipeline builds")
            .with_vo(stage)
            .with_control(control)
            .with_noise_inflation(inflation)
            .expect("valid inflation")
            .run(&dataset)
            .expect("run completes")
    };
    let open = run_with(ControlSource::GroundTruth);
    let closed = run_with(ControlSource::VisualOdometry);

    // The VO controls are genuinely close to the ground-truth deltas
    // (the regressor trained on this trajectory family), and the closed
    // loop holds the track without ground truth.
    let ctrl_err = closed.mean_control_error().expect("vo stage attached");
    assert!(ctrl_err < 0.05, "mean vo control error {ctrl_err} m");
    assert!(
        closed.steady_state_error() < 0.3,
        "closed-loop steady error {} (open {})",
        closed.steady_state_error(),
        open.steady_state_error()
    );
    assert!(closed
        .frames
        .iter()
        .all(|f| f.summary.error.is_finite() && f.summary.error < 1.0));
    // Control columns: the open run records ground truth at unit scale,
    // the closed run visual odometry at the (here pinned) inflation.
    assert!(open
        .frames
        .iter()
        .all(|f| f.control_source == ControlSource::GroundTruth && f.noise_scale == 1.0));
    for f in &closed.frames {
        assert_eq!(f.control_source, ControlSource::VisualOdometry);
        let vo = f.vo.expect("stage attached");
        assert_eq!(f.noise_scale, inflation.scale(Some(vo.variance)));
        assert!((1.0..=4.0).contains(&f.noise_scale));
    }
    // The frame log exposes the closed-loop columns for gate training.
    let text = closed.to_csv().to_string();
    let header = text.lines().next().expect("header");
    assert!(header.contains("control_source") && header.contains("noise_scale"));
    assert!(text.contains("visual-odometry"));
    // VO energy is paid identically in both modes: closing the loop
    // reuses the inference the observer already ran, it does not add a
    // second compute axis.
    assert_eq!(open.total_vo_energy_pj(), closed.total_vo_energy_pj());
}

#[test]
fn vo_pipeline_produces_calibrated_uncertainty() {
    let dataset = vo_dataset(102);
    let net =
        train_vo_network(&dataset.samples, dataset.feature_dim(), &small_train()).expect("trains");
    let calib: Vec<Vec<f64>> = dataset
        .samples
        .iter()
        .take(8)
        .map(|s| s.features.clone())
        .collect();
    let mut vo = BayesianVo::build(
        &net,
        &calib,
        VoPipelineConfig {
            mc_iterations: 12,
            ..VoPipelineConfig::default()
        },
    )
    .expect("builds");
    let run = vo.run_trajectory(&dataset).expect("runs");
    assert_eq!(run.estimates.len(), dataset.frames.len());
    assert!(run
        .per_step_variance
        .iter()
        .all(|&v| v.is_finite() && v >= 0.0));
    assert!(run.trajectory.ate_rmse.is_finite());
    // The calibration summary computes on real pipeline output.
    let summary = calibration_summary(&run.per_step_variance, &run.per_step_error, 4)
        .expect("summary computes");
    assert!(summary.pearson.is_finite());
}

#[test]
fn macro_without_adc_matches_exact_backend_bit_for_bit() {
    // The SRAM macro with the ADC disabled and reuse enabled must produce
    // exactly the same integer accumulators as the reference backend —
    // reuse is a mathematical identity, not an approximation.
    let dataset = vo_dataset(103);
    let net =
        train_vo_network(&dataset.samples, dataset.feature_dim(), &small_train()).expect("trains");
    let calib: Vec<Vec<f64>> = dataset
        .samples
        .iter()
        .take(6)
        .map(|s| s.features.clone())
        .collect();
    let qnet = QuantizedMlp::from_mlp(&net, 6, 6, &calib).expect("quantizes");
    let mut exact = ExactBackend::new();
    let mut cim = CimQuantBackend::new(SramCimMacro::new(MacroConfig {
        adc_bits: 0,
        reuse: true,
        ..MacroConfig::default()
    }));
    let mut rng = Pcg32::seed_from_u64(9);
    for sample in dataset.samples.iter().take(6) {
        // Same masks on both paths.
        let masks = qnet.sample_masks(&mut rng);
        let a = qnet.forward_with_masks(&mut exact, &sample.features, &masks);
        let b = qnet.forward_with_masks(&mut cim, &sample.features, &masks);
        assert_eq!(a, b, "macro and exact backend diverged");
    }
    // And the macro did measurably less work.
    let stats = cim.cim().stats();
    assert!(stats.macs_executed < stats.macs_full_equivalent);
}

#[test]
fn pipelines_are_deterministic_given_seeds() {
    let dataset = vo_dataset(104);
    let net =
        train_vo_network(&dataset.samples, dataset.feature_dim(), &small_train()).expect("trains");
    let calib: Vec<Vec<f64>> = dataset
        .samples
        .iter()
        .take(6)
        .map(|s| s.features.clone())
        .collect();
    let run = |seed: u64| {
        let mut vo = BayesianVo::build(
            &net,
            &calib,
            VoPipelineConfig {
                mc_iterations: 8,
                seed,
                ..VoPipelineConfig::default()
            },
        )
        .expect("builds");
        vo.run_trajectory(&dataset).expect("runs").per_step_variance
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8));
}

#[test]
fn silicon_rng_end_to_end() {
    let dataset = vo_dataset(105);
    let net =
        train_vo_network(&dataset.samples, dataset.feature_dim(), &small_train()).expect("trains");
    let calib: Vec<Vec<f64>> = dataset
        .samples
        .iter()
        .take(6)
        .map(|s| s.features.clone())
        .collect();
    let mut vo = BayesianVo::build(
        &net,
        &calib,
        VoPipelineConfig {
            mc_iterations: 8,
            silicon_rng: true,
            ..VoPipelineConfig::default()
        },
    )
    .expect("builds");
    let run = vo.run_trajectory(&dataset).expect("runs");
    let bits = run.silicon_bits.expect("silicon rng used");
    // Every mask bit came from the modeled SRAM RNG (8 iterations x
    // (24 + 12) dropout units x samples, plus calibration bits).
    assert!(bits > 8 * 36 * dataset.samples.len() as u64 / 2);
}

#[test]
fn energy_models_price_measured_runs() {
    use navicim::energy::analog::AnalogCimProfile;
    use navicim::energy::sram::SramCimProfile;

    // Localization energy from a real CIM run.
    let dataset = loc_dataset(106);
    let mut loc = CimLocalizer::build(
        &dataset,
        LocalizerConfig {
            num_particles: 100,
            components: 8,
            pixel_stride: 9,
            backend: CIM_HMGM.into(),
            ..LocalizerConfig::default()
        },
    )
    .expect("builds");
    let run = loc.run(&dataset).expect("runs");
    let stats = run.stats;
    assert!(stats.is_analog());
    let report = AnalogCimProfile::paper_45nm()
        .likelihood_eval_report(stats.avg_current(), 3, 4, 4)
        .expect("prices");
    // Per-evaluation energy in the paper's few-hundred-fJ regime.
    assert!(report.total_fj() > 20.0 && report.total_fj() < 5000.0);

    // VO energy from a real macro run.
    let vo_data = vo_dataset(107);
    let net =
        train_vo_network(&vo_data.samples, vo_data.feature_dim(), &small_train()).expect("trains");
    let calib: Vec<Vec<f64>> = vo_data
        .samples
        .iter()
        .take(6)
        .map(|s| s.features.clone())
        .collect();
    let mut vo = BayesianVo::build(&net, &calib, VoPipelineConfig::default()).expect("builds");
    let _ = vo.predict(&vo_data.samples[0].features);
    let mstats = vo.macro_stats();
    let tops = SramCimProfile::paper_16nm()
        .effective_tops_per_watt(
            mstats.macs_full_equivalent,
            mstats.macs_executed,
            mstats.adc_conversions,
            8,
            3000,
            4,
        )
        .expect("prices");
    assert!(tops > 0.5 && tops < 30.0, "tops {tops}");
}
