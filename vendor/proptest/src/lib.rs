//! Minimal, offline drop-in replacement for the subset of the
//! [proptest](https://docs.rs/proptest) API used by navicim's property
//! tests.
//!
//! Supported surface: the `proptest!` macro (with an optional
//! `#![proptest_config(...)]` header), numeric `Range` strategies
//! (`a..b` for `f64`, `u32`, `u64`, `usize`), `prop_assert!` /
//! `prop_assert_eq!`, and `ProptestConfig::with_cases`. Inputs are drawn
//! from a deterministic SplitMix64 stream seeded per test function, so
//! failures reproduce exactly across runs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases generated per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic SplitMix64 input stream for case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream (the `proptest!` macro derives the seed from the
    /// test function name so distinct tests explore distinct inputs).
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values for one macro-bound variable.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end - self.start) as u64;
                    assert!(span > 0, "empty range strategy");
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*
    };
}

int_range_strategy!(u32, u64, usize, i64);

/// FNV-1a hash of a string, used to derive per-test seeds.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Proptest-style assertion: fails the current case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // Bind first so lints see a plain bool, not the user expression.
        let condition: bool = $cond;
        if !condition {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        let condition: bool = $cond;
        if !condition {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Proptest-style equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            ));
        }
    }};
}

/// Proptest-style inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            ));
        }
    }};
}

/// Declares property tests over randomly generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $( $arg:ident in $strategy:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::seed_from_u64(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                for case in 0..config.cases {
                    $( let $arg = $crate::Strategy::generate(&($strategy), &mut rng); )*
                    let outcome = (|| -> ::std::result::Result<(), String> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!(
                            "proptest case {case} failed: {message}\n  inputs: {}",
                            [$( format!("{} = {:?}", stringify!($arg), $arg) ),*].join(", "),
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn config_cases() {
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
        assert_eq!(ProptestConfig::default().cases, 256);
    }

    #[test]
    fn strategies_stay_in_range() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = Strategy::generate(&(-2.0f64..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&f));
            let u = Strategy::generate(&(5usize..9), &mut rng);
            assert!((5..9).contains(&u));
            let w = Strategy::generate(&(0u64..17), &mut rng);
            assert!(w < 17);
        }
    }

    #[test]
    fn seeds_differ_per_name() {
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wires strategies, assertions and config together.
        #[test]
        fn macro_end_to_end(x in 0.0f64..1.0, n in 1usize..10) {
            prop_assert!(x >= 0.0);
            prop_assert!(x < 1.0, "x out of range: {x}");
            prop_assert_eq!(n + 1, 1 + n);
            prop_assert_ne!(n, n + 1);
        }
    }
}
