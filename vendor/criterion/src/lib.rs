//! Minimal, offline drop-in replacement for the subset of the
//! [criterion](https://docs.rs/criterion) API used by the navicim benches.
//!
//! The build environment has no crates.io access, so this crate provides
//! just enough of the surface — `Criterion`, `BenchmarkGroup`,
//! `BenchmarkId`, `Bencher`, `criterion_group!`/`criterion_main!` and
//! `black_box` — for the `crates/bench` suite to compile and produce
//! wall-clock timings. Timing methodology: a short calibration phase picks
//! an iteration count per sample, then `sample_size` samples are measured
//! and the median per-iteration time is reported.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\nbench group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
        }
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// A group of related benchmarks sharing a sample budget.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: impl Into<BenchmarkId>, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&self.name, &id.id);
    }

    /// Runs a benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&self.name, &id.id);
    }

    /// Ends the group (kept for API parity; prints nothing extra).
    pub fn finish(self) {}
}

/// Measures a closure supplied by the benchmark body.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    median_ns: Option<f64>,
    iters_per_sample: u64,
}

/// Target wall-clock time for one measured sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(10);

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            sample_size,
            median_ns: None,
            iters_per_sample: 0,
        }
    }

    /// Times `routine`, storing the median per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: find an iteration count that fills SAMPLE_TARGET.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= SAMPLE_TARGET || iters >= 1 << 24 {
                break;
            }
            let grow = if elapsed.is_zero() {
                8.0
            } else {
                (SAMPLE_TARGET.as_secs_f64() / elapsed.as_secs_f64()).clamp(1.5, 8.0)
            };
            iters = ((iters as f64 * grow).ceil() as u64).max(iters + 1);
        }
        // Measurement.
        let mut samples_ns = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples_ns.push(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        self.median_ns = Some(samples_ns[samples_ns.len() / 2]);
        self.iters_per_sample = iters;
    }

    fn report(&self, group: &str, id: &str) {
        match self.median_ns {
            Some(ns) => eprintln!(
                "  {group}/{id}: {} /iter  ({} iters/sample, {} samples)",
                format_ns(ns),
                self.iters_per_sample,
                self.sample_size
            ),
            None => eprintln!("  {group}/{id}: no measurement taken"),
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("id", 42), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter(100).id, "100");
    }

    #[test]
    fn ns_formatting_scales() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2e9).ends_with(" s"));
    }
}
