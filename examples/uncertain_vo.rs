//! Uncertainty-expressive visual odometry on the SRAM CIM macro.
//!
//! Trains the pose regressor, runs 4-bit MC-Dropout inference with dropout
//! bits drawn from the *modeled silicon RNG*, and shows how predictive
//! variance flags the frames with the largest pose errors — the
//! risk-awareness the paper argues edge robots need.
//!
//! Run: `cargo run --release --example uncertain_vo`

use navicim::core::reportfmt::Table;
use navicim::core::uncertainty::calibration_summary;
use navicim::core::vo::{train_vo_network, BayesianVo, VoPipelineConfig, VoTrainConfig};
use navicim::scene::dataset::{VoConfig, VoDataset, VoTrajectory};

fn main() {
    println!("uncertainty-expressive VO on the SRAM CIM macro\n");

    let dataset = VoDataset::generate(
        &VoConfig {
            image_width: 32,
            image_height: 24,
            grid_width: 6,
            grid_height: 4,
            frames: 60,
            trajectory: VoTrajectory::Waypoints(6),
            ..VoConfig::default()
        },
        7,
    )
    .expect("dataset generates");
    println!(
        "flight: {} frames, feature dim {}",
        dataset.frames.len(),
        dataset.feature_dim()
    );

    eprintln!("training...");
    let net = train_vo_network(
        &dataset.samples,
        dataset.feature_dim(),
        &VoTrainConfig {
            hidden1: 64,
            hidden2: 32,
            epochs: 200,
            ..VoTrainConfig::default()
        },
    )
    .expect("network trains");
    let calib: Vec<Vec<f64>> = dataset
        .samples
        .iter()
        .take(12)
        .map(|s| s.features.clone())
        .collect();

    // 4-bit MC-Dropout with silicon dropout bits, reuse and ordering on.
    let mut vo = BayesianVo::build(
        &net,
        &calib,
        VoPipelineConfig {
            weight_bits: 4,
            act_bits: 4,
            mc_iterations: 30,
            silicon_rng: true,
            ..VoPipelineConfig::default()
        },
    )
    .expect("pipeline builds");
    let run = vo.run_trajectory(&dataset).expect("trajectory runs");

    println!(
        "\ntrajectory: ATE RMSE {:.3} m, final drift {:.3} m",
        run.trajectory.ate_rmse, run.trajectory.final_drift
    );
    let stats = run.macro_stats;
    println!(
        "macro: executed {} / {} MACs ({:.1}% of the dense workload)",
        stats.macs_executed,
        stats.macs_full_equivalent,
        stats.workload_fraction() * 100.0
    );
    if let Some(bits) = run.silicon_bits {
        println!("silicon RNG supplied {bits} dropout bits");
    }

    // Rank frames by predictive variance: the most uncertain frames should
    // carry the largest errors.
    let mut ranked: Vec<(usize, f64, f64)> = run
        .per_step_variance
        .iter()
        .zip(&run.per_step_error)
        .enumerate()
        .map(|(i, (&v, &e))| (i, v, e))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("variances are finite"));

    println!("\nmost / least certain frames:");
    let mut table = Table::new(vec!["rank", "frame", "variance", "step error (m)"]);
    for (rank, &(i, v, e)) in ranked.iter().take(5).enumerate() {
        table.row(vec![
            format!("most-{}", rank + 1),
            format!("{i}"),
            format!("{v:.6}"),
            format!("{e:.4}"),
        ]);
    }
    for (rank, &(i, v, e)) in ranked.iter().rev().take(5).enumerate() {
        table.row(vec![
            format!("least-{}", rank + 1),
            format!("{i}"),
            format!("{v:.6}"),
            format!("{e:.4}"),
        ]);
    }
    println!("{table}");

    match calibration_summary(&run.per_step_variance, &run.per_step_error, 4) {
        Ok(summary) => println!(
            "uncertainty-error correlation: pearson {:.3}, spearman {:.3}, \
             monotone trend {}",
            summary.pearson,
            summary.spearman,
            summary.monotone_trend()
        ),
        Err(e) => println!("calibration summary unavailable: {e}"),
    }
}
