//! Drone localization on the analog CIM backend, end to end.
//!
//! The scenario of the paper's introduction: an insect-scale drone flying
//! an indoor scene must continuously estimate its pose from depth scans
//! against a pre-built map, on a microwatt power budget. This example
//! builds the scene, fits both map models, runs the particle filter on
//! each backend and prices the map-evaluation energy.
//!
//! Run: `cargo run --release --example drone_localization`

use navicim::analog::engine::CimEngineConfig;
use navicim::core::localization::{BackendKind, CimLocalizer, LocalizerConfig};
use navicim::core::reportfmt::Table;
use navicim::energy::analog::AnalogCimProfile;
use navicim::energy::digital::DigitalProfile;
use navicim::scene::dataset::{LocalizationConfig, LocalizationDataset};

fn main() {
    println!("drone localization: digital GMM vs analog HMGM-CIM\n");

    let dataset = LocalizationDataset::generate(
        &LocalizationConfig {
            image_width: 40,
            image_height: 30,
            map_points: 1600,
            frames: 24,
            ..LocalizationConfig::default()
        },
        2024,
    )
    .expect("dataset generates");
    println!(
        "scene: {} shapes, {} map points, {} frames\n",
        dataset.scene.len(),
        dataset.map_points.len(),
        dataset.frames.len()
    );

    let config = |backend| LocalizerConfig {
        num_particles: 300,
        components: 12,
        pixel_stride: 9,
        backend,
        seed: 99,
        ..LocalizerConfig::default()
    };

    let mut digital = CimLocalizer::build(&dataset, config(BackendKind::DigitalGmm))
        .expect("digital localizer builds");
    let digital_run = digital.run(&dataset).expect("digital run completes");

    let mut cim = CimLocalizer::build(
        &dataset,
        config(BackendKind::CimHmgm(CimEngineConfig::default())),
    )
    .expect("cim localizer builds");
    let cim_run = cim.run(&dataset).expect("cim run completes");

    println!("per-frame tracking error (m):");
    let mut table = Table::new(vec!["frame", "digital GMM", "analog CIM"]);
    for (i, (d, c)) in digital_run.errors.iter().zip(&cim_run.errors).enumerate() {
        table.row(vec![
            format!("{}", i + 1),
            format!("{d:.4}"),
            format!("{c:.4}"),
        ]);
    }
    println!("{table}");

    // Energy for the map evaluations both filters performed.
    let digital_profile = DigitalProfile::paper_calibrated_gmm_asic();
    let analog_profile = AnalogCimProfile::paper_45nm();
    let digital_pj = digital_profile
        .gmm_point_pj(3, 12, 8)
        .expect("digital energy prices")
        * digital_run.point_evaluations as f64;
    let stats = cim_run.cim_stats.expect("cim backend tracked stats");
    let cim_pj = analog_profile
        .likelihood_eval_report(stats.avg_current(), 3, 4, 4)
        .expect("analog energy prices")
        .total_pj()
        * stats.evaluations as f64;

    println!("map-evaluation energy over the whole flight:");
    println!(
        "  digital GMM : {:.2} uJ  (steady-state error {:.3} m)",
        digital_pj / 1e6,
        digital_run.steady_state_error()
    );
    println!(
        "  analog CIM  : {:.2} uJ  (steady-state error {:.3} m)",
        cim_pj / 1e6,
        cim_run.steady_state_error()
    );
    println!(
        "  -> the co-designed map evaluation costs {:.0}x less energy",
        digital_pj / cim_pj
    );
}
