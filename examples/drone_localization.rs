//! Drone localization on the analog CIM backend, end to end.
//!
//! The scenario of the paper's introduction: an insect-scale drone flying
//! an indoor scene must continuously estimate its pose from depth scans
//! against a pre-built map, on a microwatt power budget. This example
//! builds the scene, fits both map models, runs the particle filter on
//! each backend and prices the map-evaluation energy.
//!
//! It also demonstrates the *pluggable* backend registry: a custom map
//! backend — here a plain closure scoring distance to a subsampled point
//! cloud — is registered under a name and driven by the same localizer,
//! with no change to `navicim-core` — and the *uncertainty-gated*
//! streaming pipeline, which arbitrates digital↔analog per frame on the
//! particle spread and reports the blended flight energy.
//!
//! Run: `cargo run --release --example drone_localization`

use navicim::core::localization::{CimLocalizer, LocalizerConfig};
use navicim::core::pipeline::{GateConfig, HysteresisConfig, LocalizationPipeline, DIGITAL_SLOT};
use navicim::core::registry::{
    BackendRegistry, ClosureBackend, MapFitContext, CIM_HMGM, DIGITAL_GMM,
};
use navicim::core::reportfmt::{fmt_pct, Table};
use navicim::energy::analog::AnalogCimProfile;
use navicim::energy::digital::DigitalProfile;
use navicim::scene::dataset::{LocalizationConfig, LocalizationDataset};

fn main() {
    println!("drone localization: digital GMM vs analog HMGM-CIM\n");

    let dataset = LocalizationDataset::generate(
        &LocalizationConfig {
            image_width: 40,
            image_height: 30,
            map_points: 1600,
            frames: 24,
            ..LocalizationConfig::default()
        },
        2024,
    )
    .expect("dataset generates");
    println!(
        "scene: {} shapes, {} map points, {} frames\n",
        dataset.scene.len(),
        dataset.map_points.len(),
        dataset.frames.len()
    );

    let config = |backend: &str| LocalizerConfig {
        num_particles: 300,
        components: 12,
        pixel_stride: 9,
        backend: backend.into(),
        seed: 99,
        ..LocalizerConfig::default()
    };

    // The default registry serves the paper's backends; a custom
    // kernel-density backend registers alongside them. The factory gets
    // the dataset's point cloud through the fit context and returns any
    // Box<dyn MapBackend> — here the ClosureBackend adapter over a plain
    // scoring closure.
    let mut registry = BackendRegistry::with_defaults();
    registry.register("point-cloud-kde", |ctx: &MapFitContext<'_>| {
        let anchors: Vec<Vec<f64>> = ctx.points.iter().step_by(11).cloned().collect();
        let inv_two_sigma_sq = 1.0 / (2.0 * 0.25f64.powi(2));
        let components = anchors.len();
        Ok(Box::new(ClosureBackend::new(
            "point-cloud-kde",
            3,
            components,
            move |q: &[f64]| {
                // Max-kernel approximation of a KDE log-density: the
                // nearest anchor dominates the sum.
                let mut best = f64::MIN;
                for a in &anchors {
                    let d2: f64 = a.iter().zip(q).map(|(ai, qi)| (ai - qi).powi(2)).sum();
                    best = best.max(-d2 * inv_two_sigma_sq);
                }
                best
            },
        )))
    });

    let run_backend = |name: &str| {
        CimLocalizer::build_with_registry(&dataset, config(name), &registry)
            .unwrap_or_else(|e| panic!("{name} localizer builds: {e}"))
            .run(&dataset)
            .unwrap_or_else(|e| panic!("{name} run completes: {e}"))
    };
    let digital_run = run_backend(DIGITAL_GMM);
    let cim_run = run_backend(CIM_HMGM);
    let kde_run = run_backend("point-cloud-kde");

    println!("per-frame tracking error (m):");
    let mut table = Table::new(vec!["frame", "digital GMM", "analog CIM", "custom KDE"]);
    for (i, ((d, c), k)) in digital_run
        .errors
        .iter()
        .zip(&cim_run.errors)
        .zip(&kde_run.errors)
        .enumerate()
    {
        table.row(vec![
            format!("{}", i + 1),
            format!("{d:.4}"),
            format!("{c:.4}"),
            format!("{k:.4}"),
        ]);
    }
    println!("{table}");

    // Energy for the map evaluations both paper filters performed. The
    // trait-level BackendStats carry the analog counters; digital
    // backends report zero converter activity.
    let digital_profile = DigitalProfile::paper_calibrated_gmm_asic();
    let analog_profile = AnalogCimProfile::paper_45nm();
    let digital_pj = digital_profile
        .gmm_point_pj(3, 12, 8)
        .expect("digital energy prices")
        * digital_run.point_evaluations as f64;
    let stats = cim_run.stats;
    assert!(stats.is_analog(), "cim backend reports analog counters");
    let cim_pj = analog_profile
        .likelihood_eval_report(stats.avg_current(), 3, 4, 4)
        .expect("analog energy prices")
        .total_pj()
        * stats.evaluations as f64;

    println!("map-evaluation energy over the whole flight:");
    println!(
        "  digital GMM : {:.2} uJ  (steady-state error {:.3} m)",
        digital_pj / 1e6,
        digital_run.steady_state_error()
    );
    println!(
        "  analog CIM  : {:.2} uJ  (steady-state error {:.3} m)",
        cim_pj / 1e6,
        cim_run.steady_state_error()
    );
    println!(
        "  custom KDE  : (digital closure backend, {} evaluations, steady-state error {:.3} m)",
        kde_run.point_evaluations,
        kde_run.steady_state_error()
    );
    println!(
        "  -> the co-designed map evaluation costs {:.0}x less energy",
        digital_pj / cim_pj
    );

    // The gated pipeline: per-frame digital<->analog arbitration on the
    // particle spread, priced frame by frame. The same registry serves
    // both slots.
    let gated_config = LocalizerConfig {
        gate: GateConfig::gated(DIGITAL_GMM, CIM_HMGM).with_hysteresis(HysteresisConfig {
            analog_enter: 0.07,
            digital_enter: 0.12,
            dwell: 2,
            start: DIGITAL_SLOT,
        }),
        // Low-precision converters: the analog path's energy advantage
        // comes from the Walden-scaled ADC term.
        cim: navicim::analog::engine::CimEngineConfig {
            dac_bits: 6,
            adc_bits: 6,
            ..navicim::analog::engine::CimEngineConfig::default()
        },
        ..config(DIGITAL_GMM)
    };
    let gated_run = LocalizationPipeline::build_with_registry(&dataset, gated_config, &registry)
        .expect("gated pipeline builds")
        .run(&dataset)
        .expect("gated run completes");
    println!("\nuncertainty-gated flight (hysteresis on particle spread):");
    println!("{}", gated_run.summary_table());
    println!(
        "  {} of frames on the analog array, steady-state error {:.3} m, \
         total map energy {:.2} uJ (always-digital: {:.2} uJ)",
        fmt_pct(gated_run.analog_fraction()),
        gated_run.steady_state_error(),
        gated_run.total_energy_pj() / 1e6,
        digital_pj / 1e6
    );

    // Every frame logs the full uncertainty bus the gate saw — spread,
    // ESS fraction and the likelihood innovation (mean log-likelihood
    // vs. its running EWMA); `PipelineRun::to_csv()` exports the same
    // columns as training data for learned gates.
    println!("\n  per-frame uncertainty bus (first 5 frames):");
    for f in gated_run.frames.iter().take(5) {
        println!(
            "    frame {:>2}: spread {:.4} m, ess {:.3}, innovation {} -> {}",
            f.frame + 1,
            f.signals.spread,
            f.signals.ess_fraction,
            // Warm-up frames have no innovation reading yet.
            f.signals
                .innovation
                .map_or("  (n/a)".to_string(), |i| format!("{i:+.3}")),
            gated_run.backends[f.slot]
        );
    }
    let csv = gated_run.to_csv();
    println!(
        "  to_csv(): {} rows x {} columns of gate training data",
        csv.len(),
        csv.to_string()
            .lines()
            .next()
            .map_or(0, |h| h.split(',').count())
    );
}
