//! Quickstart: a five-minute tour of the navicim workspace.
//!
//! Builds each layer of the stack bottom-up — device, kernel, map, filter,
//! SRAM macro — and prints what it produces, ending with one step of each
//! of the paper's two pipelines.
//!
//! Run: `cargo run --release --example quickstart`

use navicim::core::localization::{CimLocalizer, LocalizerConfig};
use navicim::core::pipeline::{GateConfig, LocalizationPipeline, ANALOG_SLOT, DIGITAL_SLOT};
use navicim::core::registry::{CIM_HMGM, DIGITAL_GMM};
use navicim::core::vo::{train_vo_network, BayesianVo, VoPipelineConfig, VoTrainConfig};
use navicim::device::inverter::GaussianLikeCell;
use navicim::device::params::TechParams;
use navicim::filter::filter::{FilterConfig, ParticleFilter};
use navicim::filter::particle::ParticleSet;
use navicim::gmm::hmg::HmgKernel;
use navicim::math::rng::{Pcg32, Rng64, SampleExt};
use navicim::math::stats::normal_logpdf;
use navicim::scene::dataset::{
    LocalizationConfig, LocalizationDataset, VoConfig, VoDataset, VoTrajectory,
};
use navicim::sram::rng::{CciRng, CciRngConfig};

fn main() {
    println!("navicim quickstart\n==================\n");

    // 1. A floating-gate inverter cell: programmable Gaussian-like bell.
    let tech = TechParams::cmos_45nm();
    let cell = GaussianLikeCell::with_center(&tech, 0.55);
    println!(
        "1. device: inverter cell programmed to 0.55 V; peak current {:.2} uA, \
         effective sigma {:.0} mV",
        cell.peak_current() * 1e6,
        cell.effective_sigma() * 1e3
    );

    // 2. The kernel family that cell evaluates natively.
    let kernel = HmgKernel::new(vec![0.0, 0.0, 0.75], vec![0.3, 0.3, 0.2], 1.0)
        .expect("kernel parameters are valid");
    println!(
        "2. kernel: HMG value at its mean {:.3}, at 0.5 m offset {:.3}",
        kernel.eval(&[0.0, 0.0, 0.75]),
        kernel.eval(&[0.5, 0.0, 0.75])
    );

    // 3. Pipeline A: localize a drone in a synthetic tabletop scene.
    println!("\n3. localization pipeline (Section II):");
    let dataset = LocalizationDataset::generate(
        &LocalizationConfig {
            image_width: 32,
            image_height: 24,
            map_points: 1200,
            frames: 12,
            ..LocalizationConfig::default()
        },
        7,
    )
    .expect("dataset generates");
    let mut localizer = CimLocalizer::build(
        &dataset,
        LocalizerConfig {
            num_particles: 250,
            components: 10,
            backend: CIM_HMGM.into(),
            ..LocalizerConfig::default()
        },
    )
    .expect("localizer builds");
    let run = localizer.run(&dataset).expect("localization runs");
    println!(
        "   tracked {} frames on the analog CIM backend; steady-state error \
         {:.3} m, {} analog likelihood evaluations",
        run.errors.len(),
        run.steady_state_error(),
        run.point_evaluations
    );

    // 3b. The uncertainty-gated pipeline: the particle spread drives the
    //     compute substrate per frame — wide cloud on the accurate
    //     digital path, collapsed cloud on the cheap analog array.
    let mut gated = LocalizationPipeline::build(
        &dataset,
        LocalizerConfig {
            num_particles: 250,
            components: 10,
            gate: GateConfig::gated(DIGITAL_GMM, CIM_HMGM),
            ..LocalizerConfig::default()
        },
    )
    .expect("gated pipeline builds");
    let gated_run = gated.run(&dataset).expect("gated run completes");
    println!(
        "\n3b. gated pipeline: {} frames digital / {} frames analog, \
         steady-state error {:.3} m, map energy {:.1} nJ",
        gated_run.frames_on(DIGITAL_SLOT),
        gated_run.frames_on(ANALOG_SLOT),
        gated_run.steady_state_error(),
        gated_run.total_energy_pj() / 1e3
    );

    // 3c. Ad-hoc filtering: both the motion and the measurement model can
    //     be plain closures — no wrapper types needed.
    let mut rng = Pcg32::seed_from_u64(3);
    let init: Vec<f64> = (0..400).map(|_| rng.sample_uniform(-5.0, 5.0)).collect();
    let mut pf = ParticleFilter::new(
        ParticleSet::from_states(init).expect("non-empty cloud"),
        FilterConfig::default(),
    );
    let motion = |s: &f64, u: &f64, rng: &mut dyn Rng64| s + u + rng.sample_normal(0.0, 0.05);
    let mut sensor = |s: &f64, z: &f64| normal_logpdf(*z, *s, 0.3);
    for step in 0..15 {
        let truth = 0.2 * step as f64;
        pf.step(&0.2, &truth, &motion, &mut sensor, &mut rng)
            .expect("filter step");
    }
    println!(
        "\n3c. closure models: 1-D tracker estimate {:.2} (truth 2.80) after 15 steps",
        pf.particles().weighted_mean(|s| *s)
    );

    // 4. The SRAM-embedded RNG that feeds dropout bits.
    let mut fab = Pcg32::seed_from_u64(1);
    let mut rng = CciRng::fabricate(&CciRngConfig::default(), &mut fab).expect("rng fabricates");
    let report = rng.calibrate(2000);
    println!(
        "\n4. sram rng: bias {:.3} -> {:.3} after trim calibration ({} bits spent)",
        report.bias_before, report.bias_after, report.bits_used
    );

    // 5. Pipeline B: Bayesian VO on the SRAM CIM macro.
    println!("\n5. visual-odometry pipeline (Section III):");
    let vo_data = VoDataset::generate(
        &VoConfig {
            image_width: 24,
            image_height: 18,
            grid_width: 4,
            grid_height: 3,
            frames: 30,
            trajectory: VoTrajectory::Waypoints(4),
            ..VoConfig::default()
        },
        9,
    )
    .expect("vo dataset generates");
    let net = train_vo_network(
        &vo_data.samples,
        vo_data.feature_dim(),
        &VoTrainConfig {
            hidden1: 24,
            hidden2: 12,
            epochs: 60,
            ..VoTrainConfig::default()
        },
    )
    .expect("network trains");
    let calib: Vec<Vec<f64>> = vo_data
        .samples
        .iter()
        .take(8)
        .map(|s| s.features.clone())
        .collect();
    let mut vo =
        BayesianVo::build(&net, &calib, VoPipelineConfig::default()).expect("pipeline builds");
    let pred = vo.predict(&vo_data.samples[0].features);
    println!(
        "   4-bit MC-Dropout x30 on the macro: delta mean [{:.3}, {:.3}, {:.3}] m, \
         total predictive variance {:.5}",
        pred.mean[0],
        pred.mean[1],
        pred.mean[2],
        pred.total_variance()
    );
    let stats = vo.macro_stats();
    println!(
        "   macro executed {} of {} full-equivalent MACs ({:.0}% saved by reuse \
         and gating)",
        stats.macs_executed,
        stats.macs_full_equivalent,
        (1.0 - stats.workload_fraction()) * 100.0
    );

    println!("\nsee examples/drone_localization.rs and examples/uncertain_vo.rs for depth.");
}
