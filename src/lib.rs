//! # navicim — Uncertainty-Aware Compute-in-Memory Autonomy for Edge Robotics
//!
//! Umbrella crate re-exporting the full navicim workspace, a reproduction of
//! *"Navigating the Unknown: Uncertainty-Aware Compute-in-Memory Autonomy of
//! Edge Robotics"* (Darabi et al., DATE 2024).
//!
//! The workspace implements, from scratch:
//!
//! - an analog compute-in-memory (CIM) substrate built from floating-gate
//!   6-T inverters whose Gaussian-like switching current evaluates
//!   Harmonic-Mean-of-Gaussian kernels ([`analog`], [`device`]),
//! - Monte-Carlo (particle-filter) localization with map models co-designed
//!   for that substrate ([`filter`], [`gmm`], [`core`]),
//! - an SRAM CIM macro with an embedded stochastic dropout-bit generator and
//!   compute-reuse MC-Dropout Bayesian inference ([`sram`], [`nn`]),
//! - a procedural RGB-D scene simulator standing in for the paper's Kinect
//!   datasets ([`scene`]),
//! - parametric energy models reproducing the paper's efficiency claims
//!   ([`energy`]),
//! - a batched likelihood backend layer ([`backend`]) through which every
//!   map/sensor backend serves whole particle sets per frame instead of
//!   scalar queries — the scaling substrate for the stack.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end tour; the two headline
//! pipelines are [`core::localization::CimLocalizer`] and
//! [`core::vo::BayesianVo`].

pub use navicim_analog as analog;
pub use navicim_backend as backend;
pub use navicim_core as core;
pub use navicim_device as device;
pub use navicim_energy as energy;
pub use navicim_filter as filter;
pub use navicim_gmm as gmm;
pub use navicim_math as math;
pub use navicim_nn as nn;
pub use navicim_scenario as scenario;
pub use navicim_scene as scene;
pub use navicim_serve as serve;
pub use navicim_sram as sram;
